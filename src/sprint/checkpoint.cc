#include "sprint/checkpoint.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "archsim/machine.hh"
#include "archsim/opstream.hh"
#include "workloads/workload.hh"

namespace csprint {

namespace {

[[noreturn]] void
corrupt(const std::string &what)
{
    throw CheckpointError(CheckpointError::Kind::Corrupt, what);
}

[[noreturn]] void
unsupported(const std::string &what)
{
    throw CheckpointError(CheckpointError::Kind::Unsupported, what);
}

[[noreturn]] void
invariant(const std::string &what)
{
    throw CheckpointError(CheckpointError::Kind::Invariant, what);
}

} // namespace

/**
 * The single friend of every serializable type: static write/read
 * pairs that dump and overwrite private state field for field. Reads
 * operate on objects already constructed from the ScenarioConfig (so
 * geometry and derived caches come from the config, not the blob) and
 * validate every index and mask that could otherwise be walked into
 * undefined behaviour.
 */
struct CheckpointIO
{
    // ----- common/ ---------------------------------------------------

    static void
    write(BlobWriter &w, const Rng &rng)
    {
        for (int i = 0; i < 4; ++i)
            w.u64(rng.s[i]);
    }

    static void
    read(BlobReader &r, Rng &rng)
    {
        for (int i = 0; i < 4; ++i)
            rng.s[i] = r.u64();
    }

    static void
    write(BlobWriter &w, const P2Quantile &q)
    {
        w.f64(q.q_);
        w.u64(q.n);
        for (int i = 0; i < 5; ++i)
            w.f64(q.height[i]);
        for (int i = 0; i < 5; ++i)
            w.f64(q.pos[i]);
        for (int i = 0; i < 5; ++i)
            w.f64(q.desired[i]);
        for (int i = 0; i < 5; ++i)
            w.f64(q.rate[i]);
    }

    static void
    read(BlobReader &r, P2Quantile &q)
    {
        q.q_ = r.f64();
        q.n = static_cast<std::size_t>(r.u64());
        for (int i = 0; i < 5; ++i)
            q.height[i] = r.f64();
        for (int i = 0; i < 5; ++i)
            q.pos[i] = r.f64();
        for (int i = 0; i < 5; ++i)
            q.desired[i] = r.f64();
        for (int i = 0; i < 5; ++i)
            q.rate[i] = r.f64();
    }

    static void
    write(BlobWriter &w, const TimeSeries &ts)
    {
        w.vecF64(ts.times);
        w.vecF64(ts.values);
    }

    static void
    read(BlobReader &r, TimeSeries &ts)
    {
        ts.times = r.vecF64();
        ts.values = r.vecF64();
        if (ts.times.size() != ts.values.size())
            corrupt("time series with mismatched time/value lengths");
    }

    static void
    write(BlobWriter &w, const DecimatingTrace &dt)
    {
        write(w, dt.ts);
        w.sz(dt.cap);
        w.sz(dt.stride_);
        w.sz(dt.next_store_);
        w.sz(dt.offered_);
    }

    static void
    read(BlobReader &r, DecimatingTrace &dt)
    {
        read(r, dt.ts);
        dt.cap = static_cast<std::size_t>(r.u64());
        dt.stride_ = static_cast<std::size_t>(r.u64());
        dt.next_store_ = static_cast<std::size_t>(r.u64());
        dt.offered_ = static_cast<std::size_t>(r.u64());
        if (dt.cap < 2 || dt.stride_ == 0)
            corrupt("decimating trace with degenerate capacity/stride");
    }

    static void
    write(BlobWriter &w, const MeltCycleCounter &mc)
    {
        w.f64(mc.rise_);
        w.f64(mc.fall_);
        w.boolean(mc.molten_);
        w.i64(mc.cycles_);
    }

    static void
    read(BlobReader &r, MeltCycleCounter &mc)
    {
        mc.rise_ = r.f64();
        mc.fall_ = r.f64();
        mc.molten_ = r.boolean();
        mc.cycles_ = static_cast<int>(r.i64());
    }

    static void
    write(BlobWriter &w, const ScenarioTraceSink &sink)
    {
        w.u8(static_cast<std::uint8_t>(sink.mode_));
        write(w, sink.junction_);
        write(w, sink.power_);
        write(w, sink.melt_);
        write(w, sink.junction_ring_);
        write(w, sink.power_ring_);
        write(w, sink.melt_ring_);
    }

    static void
    read(BlobReader &r, ScenarioTraceSink &sink)
    {
        const std::uint8_t mode = r.u8();
        if (mode > static_cast<std::uint8_t>(TraceMode::Off))
            corrupt("unknown trace-sink mode");
        sink.mode_ = static_cast<TraceMode>(mode);
        read(r, sink.junction_);
        read(r, sink.power_);
        read(r, sink.melt_);
        read(r, sink.junction_ring_);
        read(r, sink.power_ring_);
        read(r, sink.melt_ring_);
    }

    // ----- thermal / arrivals ---------------------------------------

    static void
    write(BlobWriter &w, const ThermalNetworkState &st)
    {
        w.vecF64(st.temps);
        w.vecF64(st.melt_fractions);
        w.vecF64(st.injected);
    }

    static void
    read(BlobReader &r, ThermalNetworkState &st)
    {
        st.temps = r.vecF64();
        st.melt_fractions = r.vecF64();
        st.injected = r.vecF64();
        if (st.melt_fractions.size() != st.temps.size() ||
            st.injected.size() != st.temps.size())
            corrupt("thermal snapshot with mismatched node counts");
    }

    static void
    write(BlobWriter &w, const ArrivalCursor &cur)
    {
        write(w, cur.rng);
        w.f64(cur.poisson_clock);
        w.u64(cur.index);
    }

    static void
    read(BlobReader &r, ArrivalCursor &cur)
    {
        read(r, cur.rng);
        cur.poisson_clock = r.f64();
        cur.index = r.u64();
    }

    // ----- surrogate fidelity tier ----------------------------------

    static void
    write(BlobWriter &w, const SurrogateClassModel &m)
    {
        w.u64(m.n);
        w.f64(m.service_mean);
        w.f64(m.service_m2);
        w.f64(m.energy_mean);
        w.f64(m.energy_m2);
        w.f64(m.ewma_service);
        w.f64(m.ewma_energy);
        w.f64(m.ewma_sprint_time);
        w.f64(m.ewma_sprint_energy);
        w.f64(m.ewma_heat_time);
        w.f64(m.ewma_heat_energy);
        w.f64(m.exhausted_ewma);
        w.f64(m.throttled_ewma);
        write(w, m.service_p95);
        w.u64(m.surrogate_runs);
        w.u64(m.audits);
        w.boolean(m.demoted);
        w.f64(m.worst_audit_error);
    }

    static void
    read(BlobReader &r, SurrogateClassModel &m)
    {
        m.n = r.u64();
        m.service_mean = r.f64();
        m.service_m2 = r.f64();
        m.energy_mean = r.f64();
        m.energy_m2 = r.f64();
        m.ewma_service = r.f64();
        m.ewma_energy = r.f64();
        m.ewma_sprint_time = r.f64();
        m.ewma_sprint_energy = r.f64();
        m.ewma_heat_time = r.f64();
        m.ewma_heat_energy = r.f64();
        m.exhausted_ewma = r.f64();
        m.throttled_ewma = r.f64();
        read(r, m.service_p95);
        m.surrogate_runs = r.u64();
        m.audits = r.u64();
        m.demoted = r.boolean();
        m.worst_audit_error = r.f64();
    }

    static void
    write(BlobWriter &w, const TaskSurrogate &s)
    {
        write(w, s.audit_rng_);
        w.u64(s.surrogate_tasks_);
        w.u64(s.audit_tasks_);
        w.i64(s.demotions_);
        w.sz(s.classes_.size());
        for (const auto &entry : s.classes_) {
            w.u32(entry.first);
            write(w, entry.second);
        }
    }

    static void
    read(BlobReader &r, TaskSurrogate &s)
    {
        read(r, s.audit_rng_);
        s.surrogate_tasks_ = r.u64();
        s.audit_tasks_ = r.u64();
        s.demotions_ = static_cast<int>(r.i64());
        const std::size_t count = static_cast<std::size_t>(r.u64());
        s.classes_.clear();
        for (std::size_t i = 0; i < count; ++i) {
            const std::uint32_t key = r.u32();
            // classKey packs (kernel << 8) | (size << 1) | sprinted.
            if ((key >> 8) > static_cast<std::uint32_t>(
                                 KernelId::Segment) ||
                ((key >> 1) & 0x7fu) >
                    static_cast<std::uint32_t>(InputSize::D))
                corrupt("surrogate class key out of range");
            if (s.classes_.count(key))
                corrupt("duplicate surrogate class key");
            read(r, s.classes_[key]);
        }
    }

    // ----- caches / memory / energy ---------------------------------

    static void
    write(BlobWriter &w, const CacheStats &st)
    {
        w.u64(st.hits);
        w.u64(st.misses);
        w.u64(st.evictions);
        w.u64(st.dirty_evictions);
        w.u64(st.invalidations);
    }

    static void
    read(BlobReader &r, CacheStats &st)
    {
        st.hits = r.u64();
        st.misses = r.u64();
        st.evictions = r.u64();
        st.dirty_evictions = r.u64();
        st.invalidations = r.u64();
    }

    static void
    write(BlobWriter &w, const Cache &c)
    {
        w.sz(c.sets);
        w.i64(c.ways);
        w.vecU64(c.tags);
        w.sz(c.meta.size());
        for (const Cache::SetMeta &m : c.meta) {
            w.u64(m.order);
            w.u16(m.valid);
            w.u16(m.dirty);
        }
        write(w, c.counters);
    }

    static void
    read(BlobReader &r, Cache &c)
    {
        const std::size_t sets = static_cast<std::size_t>(r.u64());
        const int ways = static_cast<int>(r.i64());
        if (sets != c.sets || ways != c.ways)
            corrupt("cache geometry differs from the configuration");
        c.tags = r.vecU64();
        if (c.tags.size() != sets * static_cast<std::size_t>(ways))
            corrupt("cache tag array size mismatch");
        const std::size_t nmeta = r.sz();
        if (nmeta != sets)
            corrupt("cache metadata size mismatch");
        const std::uint16_t way_mask = static_cast<std::uint16_t>(
            ways >= 16 ? 0xFFFFu : ((1u << ways) - 1u));
        for (std::size_t s = 0; s < nmeta; ++s) {
            Cache::SetMeta &m = c.meta[s];
            m.order = r.u64();
            m.valid = r.u16();
            m.dirty = r.u16();
            m.pad = 0;
            if ((m.valid & ~way_mask) != 0 || (m.dirty & ~m.valid) != 0)
                corrupt("cache set " + std::to_string(s) +
                        " has invalid way masks");
            // The recency word must hold each way id exactly once
            // (touch() relies on it to terminate its nibble scan).
            unsigned seen = 0;
            for (int p = 0; p < 16; ++p)
                seen |= 1u << ((m.order >> (4 * p)) & 0xF);
            if (seen != 0xFFFFu)
                corrupt("cache set " + std::to_string(s) +
                        " has a non-permutation recency word");
        }
        read(r, c.counters);
        // The MRU shortcut is a pure hint; start it cold.
        c.hint_set = 0;
        c.hint_way = 0;
        c.hint_line = ~std::uint64_t(0);
    }

    static void
    writeCoreSet(BlobWriter &w, const CoreSet &s)
    {
        w.i64(s.capacity());
        w.i64(s.count());
        s.forEach([&w](int c) { w.i64(c); });
    }

    static void
    readCoreSet(BlobReader &r, CoreSet &s, int expect_capacity)
    {
        const std::int64_t cap = r.i64();
        const std::int64_t n = r.i64();
        if (cap != expect_capacity)
            corrupt("core-set capacity differs from the configuration");
        if (n < 0 || n > cap)
            corrupt("core-set member count out of range");
        s.resize(expect_capacity);
        std::int64_t prev = -1;
        for (std::int64_t i = 0; i < n; ++i) {
            const std::int64_t c = r.i64();
            if (c <= prev || c >= cap)
                corrupt("core-set members not strictly ascending in "
                        "range");
            s.add(static_cast<int>(c));
            prev = c;
        }
    }

    static void
    write(BlobWriter &w, const L2Stats &st)
    {
        w.u64(st.hits);
        w.u64(st.misses);
        w.u64(st.invalidations_sent);
        w.u64(st.downgrades_sent);
        w.u64(st.inclusion_recalls);
        w.u64(st.writebacks_received);
        w.u64(st.directory_spills);
    }

    static void
    read(BlobReader &r, L2Stats &st)
    {
        st.hits = r.u64();
        st.misses = r.u64();
        st.invalidations_sent = r.u64();
        st.downgrades_sent = r.u64();
        st.inclusion_recalls = r.u64();
        st.writebacks_received = r.u64();
        st.directory_spills = r.u64();
    }

    static void
    write(BlobWriter &w, const SharedL2 &l2)
    {
        write(w, l2.tags);
        w.sz(l2.dir.size());
        for (const SharedL2::DirEntry &e : l2.dir) {
            for (int i = 0; i < SharedL2::kInlineSharers; ++i)
                w.i16(e.ptr[i]);
            w.i16(e.dirty_owner);
            w.u8(e.nptr);
            w.boolean(e.overflow);
            w.boolean(e.l2_dirty);
            w.u32(e.ovf);
        }
        w.vecU64(l2.pool);
        w.vec(l2.pool_free,
              [](BlobWriter &w2, std::uint32_t v) { w2.u32(v); });
        writeCoreSet(w, l2.l1_mutations);
        write(w, l2.counters);
    }

    static void
    read(BlobReader &r, SharedL2 &l2)
    {
        read(r, l2.tags);
        const std::size_t nd = r.sz();
        if (nd != l2.dir.size())
            corrupt("directory size differs from the tag store");
        for (SharedL2::DirEntry &e : l2.dir) {
            for (int i = 0; i < SharedL2::kInlineSharers; ++i)
                e.ptr[i] = r.i16();
            e.dirty_owner = r.i16();
            e.nptr = r.u8();
            e.overflow = r.boolean();
            e.l2_dirty = r.boolean();
            e.ovf = r.u32();
            if (e.nptr > SharedL2::kInlineSharers)
                corrupt("directory entry with too many inline sharers");
            if (e.dirty_owner < -1 || e.dirty_owner >= l2.num_cores)
                corrupt("directory dirty owner out of range");
            if (!e.overflow) {
                for (int i = 0; i < e.nptr; ++i) {
                    if (e.ptr[i] < 0 || e.ptr[i] >= l2.num_cores)
                        corrupt("inline sharer id out of range");
                }
            }
        }
        l2.pool = r.vecU64();
        const std::size_t wpb = l2.words_per_block;
        if (wpb == 0 ? !l2.pool.empty() : l2.pool.size() % wpb != 0)
            corrupt("overflow pool size not a whole number of blocks");
        const std::size_t blocks = wpb ? l2.pool.size() / wpb : 0;
        for (const SharedL2::DirEntry &e : l2.dir) {
            if (!e.overflow)
                continue;
            if (e.ovf >= blocks)
                corrupt("overflow block index out of range");
            // Stray sharer bits at or beyond the core count would
            // index past the L1 array during coherence actions.
            const std::uint64_t *words =
                &l2.pool[static_cast<std::size_t>(e.ovf) * wpb];
            for (std::size_t wd = 0; wd < wpb; ++wd) {
                const std::size_t base = wd * 64;
                std::uint64_t mask = 0;
                if (static_cast<std::size_t>(l2.num_cores) >= base + 64)
                    mask = ~std::uint64_t(0);
                else if (static_cast<std::size_t>(l2.num_cores) > base)
                    mask = (std::uint64_t(1)
                            << (l2.num_cores - base)) -
                           1;
                if ((words[wd] & ~mask) != 0)
                    corrupt("overflow sharer bit beyond the core count");
            }
        }
        l2.pool_free = r.vec<std::uint32_t>(
            4, [](BlobReader &r2) { return r2.u32(); });
        for (std::uint32_t b : l2.pool_free) {
            if (b >= blocks)
                corrupt("recycled overflow block index out of range");
        }
        readCoreSet(r, l2.l1_mutations, l2.num_cores);
        read(r, l2.counters);
    }

    static void
    write(BlobWriter &w, const MemorySystem &mem)
    {
        w.f64(mem.mult);
        w.vecF64(mem.next_free);
        w.u64(mem.counters.reads);
        w.u64(mem.counters.writebacks);
        w.u64(mem.counters.queued_cycles);
    }

    static void
    read(BlobReader &r, MemorySystem &mem)
    {
        mem.mult = r.f64();
        if (!(mem.mult > 0.0) || !std::isfinite(mem.mult))
            corrupt("memory frequency multiplier not positive");
        mem.next_free = r.vecF64();
        if (mem.next_free.size() !=
            static_cast<std::size_t>(mem.cfg.channels))
            corrupt("memory channel count differs from the "
                    "configuration");
        mem.counters.reads = r.u64();
        mem.counters.writebacks = r.u64();
        mem.counters.queued_cycles = r.u64();
    }

    static void
    write(BlobWriter &w, const InstructionEnergyModel &em)
    {
        w.i64(em.params.node_nm);
        w.f64(em.params.vdd);
        w.f64(em.params.clock);
        w.f64(em.params.cap_scale);
        for (std::size_t i = 0; i < kNumOpKinds; ++i)
            w.f64(em.op_energy[i]);
        w.f64(em.l2_energy);
        w.f64(em.dram_energy);
        w.f64(em.idle_energy);
        w.f64(em.nominal_cycle);
    }

    static void
    read(BlobReader &r, InstructionEnergyModel &em)
    {
        em.params.node_nm = static_cast<int>(r.i64());
        em.params.vdd = r.f64();
        em.params.clock = r.f64();
        em.params.cap_scale = r.f64();
        for (std::size_t i = 0; i < kNumOpKinds; ++i)
            em.op_energy[i] = r.f64();
        em.l2_energy = r.f64();
        em.dram_energy = r.f64();
        em.idle_energy = r.f64();
        em.nominal_cycle = r.f64();
    }

    // ----- machine ---------------------------------------------------

    static void
    write(BlobWriter &w, const MachineStats &st)
    {
        w.u64(st.cycles);
        w.f64(st.seconds);
        w.u64(st.ops_retired);
        for (std::size_t i = 0; i < kNumOpKinds; ++i)
            w.u64(st.ops_by_kind[i]);
        w.u64(st.l1_hits);
        w.u64(st.l1_misses);
        w.u64(st.idle_cycles);
        w.u64(st.sleep_cycles);
        w.u64(st.barrier_arrivals);
        w.f64(st.dynamic_energy);
    }

    static void
    read(BlobReader &r, MachineStats &st)
    {
        st.cycles = r.u64();
        st.seconds = r.f64();
        st.ops_retired = r.u64();
        for (std::size_t i = 0; i < kNumOpKinds; ++i)
            st.ops_by_kind[i] = r.u64();
        st.l1_hits = r.u64();
        st.l1_misses = r.u64();
        st.idle_cycles = r.u64();
        st.sleep_cycles = r.u64();
        st.barrier_arrivals = r.u64();
        st.dynamic_energy = r.f64();
    }

    static void
    writeStream(BlobWriter &w, const OpStream &s)
    {
        if (const auto *v = dynamic_cast<const VectorOpStream *>(&s)) {
            w.u8(0);
            w.sz(v->pos);
            return;
        }
        if (const auto *c = dynamic_cast<const ChunkedOpStream *>(&s)) {
            if (c->pos < c->buffer.size())
                unsupported("chunked op stream holds an undrained "
                            "buffer (machine not at a bulk-refill "
                            "boundary)");
            w.u8(1);
            w.sz(c->next_chunk);
            return;
        }
        unsupported("custom OpStream type cannot be checkpointed");
    }

    static std::unique_ptr<OpStream>
    readStream(BlobReader &r, const Phase &phase, std::size_t task)
    {
        if (phase.make_task == nullptr || task >= phase.num_tasks)
            corrupt("stream task index out of range for the phase");
        std::unique_ptr<OpStream> s = phase.make_task(task);
        const std::uint8_t type = r.u8();
        if (type == 0) {
            auto *v = dynamic_cast<VectorOpStream *>(s.get());
            if (!v)
                corrupt("blob says vector stream; factory built "
                        "another type");
            const std::size_t pos = static_cast<std::size_t>(r.u64());
            if (pos > v->ops.size())
                corrupt("vector stream cursor past the end");
            v->pos = pos;
        } else if (type == 1) {
            auto *c = dynamic_cast<ChunkedOpStream *>(s.get());
            if (!c)
                corrupt("blob says chunked stream; factory built "
                        "another type");
            const std::size_t next = static_cast<std::size_t>(r.u64());
            if (next > c->num_chunks)
                corrupt("chunked stream cursor past the last chunk");
            // Replay the consumed chunks in order so stateful
            // generator closures reach the state they held at the
            // snapshot; the machine's pending ops live in the
            // thread's buffered window, not here.
            for (std::size_t i = 0; i < next; ++i)
                c->fn(i, c->buffer);
            c->buffer.clear();
            c->pos = 0;
            c->next_chunk = next;
        } else {
            corrupt("unknown op-stream type tag");
        }
        return s;
    }

    static void
    requireSuspendedBoundary(const Machine &m)
    {
        if (!m.was_suspended || m.aborted)
            unsupported("machine must be suspended at a sample "
                        "boundary to serialize");
        bool clear = m.tally.idle_ticks == 0 &&
                     m.tally.l2_accesses == 0 &&
                     m.tally.dram_accesses == 0;
        for (std::uint64_t v : m.tally.ops)
            clear = clear && v == 0;
        if (!clear)
            unsupported("machine holds unpriced energy tallies");
    }

    static void
    write(BlobWriter &w, const Machine &m)
    {
        requireSuspendedBoundary(m);
        w.u64(m.cycle);
        w.f64(m.freq_mult);
        w.f64(m.time_base);
        w.u64(m.cycle_base);
        w.sz(m.phase_idx);
        w.sz(m.serial_next_task);
        w.sz(m.dynamic_next_task);
        w.u64(m.dequeue_free_at);
        w.sz(m.barrier_count);
        w.i64(m.active_cores);
        w.boolean(m.mem_batch_ok);
        write(w, m.cfg.energy);
        write(w, m.totals);
        w.vec(m.locks, [](BlobWriter &w2, const Machine::LockState &l) {
            w2.i64(l.holder);
        });
        w.sz(m.threads.size());
        for (const Machine::Thread &t : m.threads) {
            // A thread parked at a barrier may still hold the stream
            // of its last task; enterPhase resets it before it is
            // ever read again, so canonicalize it away.
            const bool has_stream =
                t.stream != nullptr && !t.at_barrier;
            w.boolean(has_stream);
            if (has_stream) {
                w.sz(t.current_task);
                writeStream(w, *t.stream);
            }
            w.boolean(t.at_barrier);
            w.u64(t.sleep_until);
            w.i64(t.spin_failures);
            w.sz(t.next_task);
            w.sz(t.task_end);
            // Only the pending window of the bulk op buffer matters.
            w.sz(t.buf_len - t.buf_pos);
            for (std::size_t i = t.buf_pos; i < t.buf_len; ++i)
                w.u64(t.buf[i].bits);
        }
        w.sz(m.cores.size());
        for (const Machine::Core &c : m.cores) {
            w.boolean(c.active);
            w.vec(c.run_queue,
                  [](BlobWriter &w2, std::size_t v) { w2.sz(v); });
            w.sz(c.rr);
            w.i64(c.current);
            w.u64(c.busy_until);
            w.u64(c.quantum_end);
            w.boolean(c.idle_repeat);
            w.u64(c.idle_from);
        }
        w.sz(m.next_event.size());
        for (Cycles ev : m.next_event)
            w.u64(ev);
        w.sz(m.l1s.size());
        for (const Cache &c : m.l1s)
            write(w, c);
        write(w, *m.l2);
        write(w, *m.memory);
    }

    static void
    read(BlobReader &r, Machine &m, const ParallelProgram &program)
    {
        m.cycle = r.u64();
        m.freq_mult = r.f64();
        if (!(m.freq_mult > 0.0) || !std::isfinite(m.freq_mult))
            corrupt("machine frequency multiplier not positive");
        m.time_base = r.f64();
        m.cycle_base = r.u64();
        m.phase_idx = static_cast<std::size_t>(r.u64());
        if (m.phase_idx > program.phases().size())
            corrupt("phase index out of range");
        m.serial_next_task = static_cast<std::size_t>(r.u64());
        m.dynamic_next_task = static_cast<std::size_t>(r.u64());
        m.dequeue_free_at = r.u64();
        m.barrier_count = static_cast<std::size_t>(r.u64());
        const std::int64_t active = r.i64();
        if (active < 0 ||
            active > static_cast<std::int64_t>(m.cores.size()))
            corrupt("active core count out of range");
        m.active_cores = static_cast<int>(active);
        m.mem_batch_ok = r.boolean();
        read(r, m.cfg.energy);
        read(r, m.totals);
        m.locks = r.vec<Machine::LockState>(8, [&m](BlobReader &r2) {
            Machine::LockState l;
            l.holder = static_cast<int>(r2.i64());
            if (l.holder < -1 ||
                l.holder >= static_cast<int>(m.threads.size()))
                corrupt("lock holder out of range");
            return l;
        });
        const std::size_t nt = r.u64();
        if (nt != m.threads.size())
            corrupt("thread count differs from the configuration");
        for (Machine::Thread &t : m.threads) {
            const bool has_stream = r.boolean();
            if (has_stream) {
                t.current_task = static_cast<std::size_t>(r.u64());
                if (m.phase_idx >= program.phases().size())
                    corrupt("live stream in a finished machine");
                t.stream = readStream(
                    r, program.phases()[m.phase_idx], t.current_task);
            } else {
                t.stream.reset();
                t.current_task = 0;
            }
            t.at_barrier = r.boolean();
            t.sleep_until = r.u64();
            t.spin_failures = static_cast<int>(r.i64());
            t.next_task = static_cast<std::size_t>(r.u64());
            t.task_end = static_cast<std::size_t>(r.u64());
            // The window can exceed kOpBufferCap: a chunked stream's
            // fillInto swaps whole chunks into the thread buffer.
            // Bound it by the bytes actually present (8 per op).
            const std::size_t n = static_cast<std::size_t>(r.u64());
            if (n > r.remaining() / 8)
                corrupt("op window larger than the remaining bytes");
            if (t.buf.size() < n)
                t.buf.resize(n);
            for (std::size_t i = 0; i < n; ++i)
                t.buf[i].bits = r.u64();
            t.buf_pos = 0;
            t.buf_len = n;
        }
        const std::size_t nc = r.u64();
        if (nc != m.cores.size())
            corrupt("core count differs from the configuration");
        for (Machine::Core &c : m.cores) {
            c.active = r.boolean();
            c.run_queue = r.vec<std::size_t>(8, [&m](BlobReader &r2) {
                const std::uint64_t v = r2.u64();
                if (v >= m.threads.size())
                    corrupt("run-queue thread id out of range");
                return static_cast<std::size_t>(v);
            });
            c.rr = static_cast<std::size_t>(r.u64());
            if (!c.run_queue.empty() && c.rr >= c.run_queue.size())
                corrupt("round-robin cursor out of range");
            const std::int64_t cur = r.i64();
            if (cur < -1 ||
                cur >= static_cast<std::int64_t>(m.threads.size()))
                corrupt("current thread id out of range");
            c.current = static_cast<int>(cur);
            c.busy_until = r.u64();
            c.quantum_end = r.u64();
            c.idle_repeat = r.boolean();
            c.idle_from = r.u64();
        }
        const std::size_t nev = r.u64();
        if (nev != m.next_event.size())
            corrupt("next-event array size mismatch");
        for (std::size_t i = 0; i < nev; ++i)
            m.next_event[i] = r.u64();
        const std::size_t nl1 = r.u64();
        if (nl1 != m.l1s.size())
            corrupt("L1 count differs from the configuration");
        for (Cache &c : m.l1s)
            read(r, c);
        read(r, *m.l2);
        read(r, *m.memory);

        // Derived and transient state: stride probes are pure
        // lookahead (outcome-invariant), so they restart cold; the
        // scan cache re-derives from next_event with probes zeroed.
        for (std::size_t c = 0; c < m.cores.size(); ++c) {
            m.resetProbe(m.cores[c]);
            m.refreshScanCache(c);
        }
        m.events_dirty = false;
        m.aborted = false;
        m.suspend_pending = false;
        m.was_suspended = true;
        m.tally = Machine::EnergyTally();
        m.energy_at_last_sample = m.totals.dynamic_energy;
    }

    // ----- warm re-activation husk ----------------------------------

    /**
     * The warm machine only ever feeds warmStartFrom(), which reads
     * the cache geometry, L1/L2/directory contents, the memory
     * channel residuals, and the cycle count — so the husk record
     * skips thread/core scheduler state entirely and rebuilds the
     * machine against an empty program.
     */
    static void
    writeWarmHusk(BlobWriter &w, const ScenarioConfig &cfg,
                  const Machine &m)
    {
        const bool granted = m.cfg.num_cores ==
                             cfg.platform.machineConfig().num_cores;
        w.boolean(granted);
        w.u64(m.cycle);
        w.sz(m.l1s.size());
        for (const Cache &c : m.l1s)
            write(w, c);
        write(w, *m.l2);
        write(w, *m.memory);
    }

    static void
    readWarmHusk(BlobReader &r, const ScenarioConfig &cfg,
                 ScenarioCheckpoint &ck)
    {
        const bool granted = r.boolean();
        const SprintConfig run_cfg =
            granted ? cfg.platform : consolidatedPlatform(cfg.platform);
        ck.warm_program = std::make_unique<ParallelProgram>("warm-husk");
        ck.warm_machine = prepareMachine(*ck.warm_program, run_cfg);
        Machine &m = *ck.warm_machine;
        m.cycle = r.u64();
        const std::size_t nl1 = r.u64();
        if (nl1 != m.l1s.size())
            corrupt("warm husk L1 count differs from the "
                    "configuration");
        for (Cache &c : m.l1s)
            read(r, c);
        read(r, *m.l2);
        read(r, *m.memory);
    }

    // ----- scenario value records -----------------------------------

    static void
    write(BlobWriter &w, const ScenarioTask &t)
    {
        w.f64(t.arrival);
        w.u8(static_cast<std::uint8_t>(t.kernel));
        w.u8(static_cast<std::uint8_t>(t.size));
        w.u64(t.seed);
        w.i64(t.priority);
        w.f64(t.deadline);
    }

    static void
    read(BlobReader &r, ScenarioTask &t)
    {
        t.arrival = r.f64();
        const std::uint8_t kernel = r.u8();
        if (kernel > static_cast<std::uint8_t>(KernelId::Segment))
            corrupt("unknown kernel id");
        t.kernel = static_cast<KernelId>(kernel);
        const std::uint8_t size = r.u8();
        if (size > static_cast<std::uint8_t>(InputSize::D))
            corrupt("unknown input size");
        t.size = static_cast<InputSize>(size);
        t.seed = r.u64();
        t.priority = static_cast<int>(r.i64());
        t.deadline = r.f64();
    }

    static void
    write(BlobWriter &w, const RunResult &rr)
    {
        w.str(rr.program_name);
        w.i64(rr.sprint_cores);
        w.i64(rr.num_threads);
        w.f64(rr.dvfs_boost);
        w.f64(rr.task_time);
        w.f64(rr.dynamic_energy);
        w.f64(rr.peak_junction);
        w.f64(rr.final_melt_fraction);
        w.boolean(rr.sprint_exhausted);
        w.boolean(rr.hardware_throttled);
        w.f64(rr.sprint_duration);
        w.f64(rr.sprint_energy);
        w.f64(rr.cooldown_estimate);
        w.f64(rr.avg_power);
        w.f64(rr.sampled_time);
        w.f64(rr.sampled_energy);
        write(w, rr.junction_trace);
        write(w, rr.power_trace);
        write(w, rr.melt_trace);
        write(w, rr.machine);
    }

    static void
    read(BlobReader &r, RunResult &rr)
    {
        rr.program_name = r.str();
        rr.sprint_cores = static_cast<int>(r.i64());
        rr.num_threads = static_cast<int>(r.i64());
        rr.dvfs_boost = r.f64();
        rr.task_time = r.f64();
        rr.dynamic_energy = r.f64();
        rr.peak_junction = r.f64();
        rr.final_melt_fraction = r.f64();
        rr.sprint_exhausted = r.boolean();
        rr.hardware_throttled = r.boolean();
        rr.sprint_duration = r.f64();
        rr.sprint_energy = r.f64();
        rr.cooldown_estimate = r.f64();
        rr.avg_power = r.f64();
        rr.sampled_time = r.f64();
        rr.sampled_energy = r.f64();
        read(r, rr.junction_trace);
        read(r, rr.power_trace);
        read(r, rr.melt_trace);
        read(r, rr.machine);
    }

    static void
    write(BlobWriter &w, const ScenarioTaskResult &t)
    {
        w.f64(t.arrival);
        w.f64(t.start);
        w.f64(t.finish);
        w.f64(t.response);
        w.boolean(t.sprint_granted);
        w.f64(t.melt_at_start);
        w.f64(t.melt_at_end);
        w.i64(t.priority);
        w.f64(t.deadline);
        w.boolean(t.deadline_met);
        w.i64(t.preemptions);
        write(w, t.run);
    }

    static void
    read(BlobReader &r, ScenarioTaskResult &t)
    {
        t.arrival = r.f64();
        t.start = r.f64();
        t.finish = r.f64();
        t.response = r.f64();
        t.sprint_granted = r.boolean();
        t.melt_at_start = r.f64();
        t.melt_at_end = r.f64();
        t.priority = static_cast<int>(r.i64());
        t.deadline = r.f64();
        t.deadline_met = r.boolean();
        t.preemptions = static_cast<int>(r.i64());
        read(r, t.run);
    }

    static void
    write(BlobWriter &w, const PumpState &p)
    {
        w.f64(p.elapsed);
        w.f64(p.ramp_time);
        w.f64(p.above_tdp_time);
        w.f64(p.above_tdp_energy);
        w.f64(p.sampled_time);
        w.f64(p.sampled_energy);
        w.f64(p.peak_junction);
        w.boolean(p.sprint_exhausted);
        w.boolean(p.hardware_throttled);
        w.boolean(p.policy_throttled);
        write(w, p.junction_trace);
        write(w, p.power_trace);
        write(w, p.melt_trace);
    }

    static void
    read(BlobReader &r, PumpState &p)
    {
        p.elapsed = r.f64();
        p.ramp_time = r.f64();
        p.above_tdp_time = r.f64();
        p.above_tdp_energy = r.f64();
        p.sampled_time = r.f64();
        p.sampled_energy = r.f64();
        p.peak_junction = r.f64();
        p.sprint_exhausted = r.boolean();
        p.hardware_throttled = r.boolean();
        p.policy_throttled = r.boolean();
        read(r, p.junction_trace);
        read(r, p.power_trace);
        read(r, p.melt_trace);
    }

    static void
    writeExecution(BlobWriter &w, const ScenarioConfig &cfg,
                   const ScenarioTaskExecution &ex)
    {
        write(w, ex.task);
        w.boolean(ex.started);
        w.boolean(ex.sprint_granted);
        w.i64(ex.preemptions);
        w.f64(ex.first_start);
        w.f64(ex.melt_at_start);
        write(w, ex.pump);
        const bool has_machine = ex.machine != nullptr;
        w.boolean(has_machine);
        if (has_machine)
            write(w, *ex.machine);
        (void)cfg;
    }

    static std::unique_ptr<ScenarioTaskExecution>
    readExecution(BlobReader &r, const ScenarioConfig &cfg)
    {
        auto ex = std::make_unique<ScenarioTaskExecution>();
        read(r, ex->task);
        ex->started = r.boolean();
        ex->sprint_granted = r.boolean();
        ex->preemptions = static_cast<int>(r.i64());
        ex->first_start = r.f64();
        ex->melt_at_start = r.f64();
        read(r, ex->pump);
        const bool has_machine = r.boolean();
        if (has_machine) {
            // A suspended execution rebuilds its program and machine
            // from the config's factories (the same three lines the
            // engine's dispatch path runs), then overwrites the
            // machine's architectural state from the blob.
            ex->run_cfg = ex->sprint_granted
                              ? cfg.platform
                              : consolidatedPlatform(cfg.platform);
            ex->program = std::make_unique<ParallelProgram>(
                cfg.program_factory
                    ? cfg.program_factory(ex->task)
                    : buildKernelProgram(ex->task.kernel, ex->task.size,
                                         ex->task.seed));
            ex->machine = prepareMachine(*ex->program, ex->run_cfg);
            read(r, *ex->machine, *ex->program);
        }
        return ex;
    }

    // ----- paranoia validation --------------------------------------

    static void
    validateMachineCoherence(const Machine &m, const std::string &who)
    {
        const SharedL2 &l2 = *m.l2;
        const Cache &tags = l2.tags;
        for (std::size_t slot = 0; slot < tags.numSlots(); ++slot) {
            if (!tags.validAt(slot))
                continue;
            const std::uint64_t line = tags.lineAt(slot);
            const SharedL2::DirEntry &e = l2.dir[slot];
            // Sharer bits are a conservative superset (clean L1
            // evictions are silent), so only their range is checked;
            // the dirty owner is kept precise by writebackFromL1 and
            // the downgrade path, so it must really hold the line
            // dirty.
            l2.forEachSharer(e, [&](int c) {
                if (c < 0 || c >= static_cast<int>(m.l1s.size()))
                    invariant(who + ": directory sharer id " +
                              std::to_string(c) + " out of range");
            });
            if (e.dirty_owner >= 0) {
                if (!l2.hasSharer(e, e.dirty_owner))
                    invariant(who + ": dirty owner " +
                              std::to_string(e.dirty_owner) +
                              " of line " + std::to_string(line) +
                              " is not a sharer");
                if (!m.l1s[static_cast<std::size_t>(e.dirty_owner)]
                         .isDirty(line))
                    invariant(who + ": dirty owner " +
                              std::to_string(e.dirty_owner) +
                              "'s L1 copy of line " +
                              std::to_string(line) + " is not dirty");
            }
        }
        for (std::size_t c = 0; c < m.l1s.size(); ++c) {
            const Cache &l1 = m.l1s[c];
            for (std::size_t slot = 0; slot < l1.numSlots(); ++slot) {
                if (!l1.validAt(slot))
                    continue;
                const std::uint64_t line = l1.lineAt(slot);
                const std::size_t l2slot = tags.findSlot(line);
                if (l2slot == Cache::kNoSlot)
                    invariant(who + ": core " + std::to_string(c) +
                              " holds line " + std::to_string(line) +
                              " absent from the L2 (inclusion "
                              "violated)");
                if (!l2.hasSharer(l2.dir[l2slot],
                                  static_cast<int>(c)))
                    invariant(who + ": core " + std::to_string(c) +
                              " holds line " + std::to_string(line) +
                              " but the directory does not list it as "
                              "a sharer");
            }
        }
    }

    static void
    validate(const ScenarioConfig &cfg, const ScenarioCheckpoint &ck)
    {
        const MobilePackageParams &pkg = cfg.platform.package;
        const double t_lo = pkg.ambient - 1.0;
        const double t_hi = pkg.t_junction_max + 50.0;
        for (std::size_t i = 0; i < ck.thermal.temps.size(); ++i) {
            const double t = ck.thermal.temps[i];
            if (!std::isfinite(t) || t < t_lo || t > t_hi)
                invariant("thermal node " + std::to_string(i) +
                          " temperature " + std::to_string(t) +
                          " outside [" + std::to_string(t_lo) + ", " +
                          std::to_string(t_hi) + "]");
        }
        for (std::size_t i = 0; i < ck.thermal.melt_fractions.size();
             ++i) {
            const double f = ck.thermal.melt_fractions[i];
            if (!std::isfinite(f) || f < 0.0 || f > 1.0)
                invariant("thermal node " + std::to_string(i) +
                          " melt fraction " + std::to_string(f) +
                          " outside [0, 1]");
        }
        for (std::size_t i = 0; i < ck.thermal.injected.size(); ++i) {
            if (!std::isfinite(ck.thermal.injected[i]))
                invariant("thermal node " + std::to_string(i) +
                          " injected power is not finite");
        }
        if (!std::isfinite(ck.now) || ck.now < 0.0)
            invariant("timeline clock " + std::to_string(ck.now) +
                      " is negative or non-finite");
        const double time_eps = 1e-9 * (1.0 + ck.now);
        if (!std::isfinite(ck.busy) || ck.busy < 0.0 ||
            ck.busy > ck.now + time_eps)
            invariant("busy time " + std::to_string(ck.busy) +
                      " exceeds the timeline clock " +
                      std::to_string(ck.now));
        if (!std::isfinite(ck.total_energy) || ck.total_energy < 0.0)
            invariant("total energy " +
                      std::to_string(ck.total_energy) +
                      " is negative or non-finite");
        const double energy_eps = 1e-9 * (1.0 + ck.total_energy);
        if (!std::isfinite(ck.total_sprint_energy) ||
            ck.total_sprint_energy < 0.0 ||
            ck.total_sprint_energy > ck.total_energy + energy_eps)
            invariant("sprint energy " +
                      std::to_string(ck.total_sprint_energy) +
                      " exceeds total energy " +
                      std::to_string(ck.total_energy));
        if (!std::isfinite(ck.total_sprint_time) ||
            ck.total_sprint_time < 0.0 ||
            ck.total_sprint_time > ck.now + time_eps)
            invariant("sprint time " +
                      std::to_string(ck.total_sprint_time) +
                      " exceeds the timeline clock");
        if (!std::isfinite(ck.peak_melt) || ck.peak_melt < 0.0 ||
            ck.peak_melt > 1.0)
            invariant("peak melt fraction " +
                      std::to_string(ck.peak_melt) +
                      " outside [0, 1]");
        if (!std::isfinite(ck.peak_junction) ||
            (ck.peak_junction != 0.0 && ck.peak_junction > t_hi))
            invariant("peak junction temperature " +
                      std::to_string(ck.peak_junction) +
                      " outside physical bounds");
        if (ck.sprints_granted < 0 || ck.sprints_denied < 0 ||
            ck.sprints_exhausted < 0 || ck.hardware_throttles < 0 ||
            ck.preemptions < 0 || ck.tasks_dropped < 0 ||
            ck.deadlines_met < 0 || ck.deadlines_missed < 0)
            invariant("negative event counter in the checkpoint");
        if (cfg.keep_task_results &&
            ck.tasks.size() >
                ck.tasks_completed +
                    static_cast<std::uint64_t>(ck.tasks_dropped))
            invariant("retained task results (" +
                      std::to_string(ck.tasks.size()) +
                      ") exceed tasks completed plus dropped");
        for (std::size_t i = 0; i < ck.ready.size(); ++i) {
            const ScenarioTaskExecution *ex = ck.ready[i].get();
            if (ex == nullptr)
                invariant("null execution in the ready queue");
            if (ex->machine)
                validateMachineCoherence(
                    *ex->machine, "ready[" + std::to_string(i) + "]");
        }
        if (ck.warm_machine)
            validateMachineCoherence(*ck.warm_machine, "warm machine");
    }

    // ----- config digest --------------------------------------------

    static void
    digestGovernor(BlobWriter &d, const GovernorConfig &g)
    {
        d.f64(g.margin);
        d.boolean(g.use_activity_estimate);
        d.f64(g.temp_guard);
        d.f64(g.software_grace);
    }

    static void
    digestPlatform(BlobWriter &d, const SprintConfig &p)
    {
        d.i64(p.sprint_cores);
        d.i64(p.num_threads);
        d.f64(p.dvfs_boost);
        d.f64(p.activation_ramp);
        const MobilePackageParams &pk = p.package;
        d.f64(pk.ambient);
        d.f64(pk.t_junction_max);
        d.f64(pk.c_junction);
        d.f64(pk.pcm_mass);
        d.f64(pk.pcm_latent_per_gram);
        d.f64(pk.pcm_sensible_per_gram);
        d.f64(pk.pcm_melt_temp);
        d.f64(pk.r_junction_to_pcm);
        d.f64(pk.r_pcm_to_case);
        d.f64(pk.r_case_to_ambient);
        d.f64(pk.c_case);
        digestGovernor(d, p.governor);
        d.boolean(p.software_migration_fails);
        const MachineConfig &m = p.machine;
        d.i64(m.num_cores);
        d.i64(m.num_threads);
        d.f64(m.nominal_clock);
        d.f64(m.freq_mult);
        d.sz(m.l1_bytes);
        d.i64(m.l1_assoc);
        d.sz(m.line_bytes);
        d.sz(m.l2.size_bytes);
        d.i64(m.l2.assoc);
        d.sz(m.l2.line_bytes);
        d.u64(m.l2.hit_latency);
        d.u64(m.l2.coherence_penalty);
        d.i64(static_cast<int>(m.l2.directory));
        d.i64(m.memory.channels);
        d.f64(m.memory.channel_bytes_per_sec);
        d.f64(m.memory.round_trip);
        d.sz(m.memory.line_bytes);
        d.u64(m.pause_sleep_cycles);
        d.u64(m.context_switch_cycles);
        d.u64(m.thread_quantum);
        d.u64(m.task_dequeue_cycles);
        d.u64(m.migration_cycles);
        d.i64(m.spin_tries_before_pause);
        d.i64(static_cast<int>(m.loop));
        // dispatch_threads / dispatch_gang are excluded: results are
        // bit-identical for every value (gated differentially), so a
        // checkpoint may move to a host with a different core count.
        const TechParams &tech = m.energy.tech();
        d.i64(tech.node_nm);
        d.f64(tech.vdd);
        d.f64(tech.clock);
        d.f64(tech.cap_scale);
    }

    static std::uint32_t
    digest(const ScenarioConfig &cfg)
    {
        BlobWriter d;
        digestPlatform(d, cfg.platform);
        d.i64(static_cast<int>(cfg.policy.kind));
        digestGovernor(d, cfg.policy.governor);
        d.f64(cfg.policy.pacing_period);
        d.f64(cfg.policy.resume_fraction);
        d.f64(cfg.policy.qos_slack);
        d.f64(cfg.policy.service_prior);
        d.i64(static_cast<int>(cfg.pattern));
        d.i64(cfg.num_tasks);
        d.f64(cfg.period);
        d.i64(cfg.burst_size);
        d.f64(cfg.burst_spacing);
        d.i64(static_cast<int>(cfg.kernel));
        d.i64(static_cast<int>(cfg.size));
        d.u64(cfg.seed);
        // Callbacks contribute presence only: the engine requires
        // them to be pure functions of their inputs.
        d.boolean(cfg.program_factory != nullptr);
        d.boolean(cfg.task_tuner != nullptr);
        d.boolean(cfg.policy_factory != nullptr);
        d.boolean(cfg.warm_caches);
        d.f64(cfg.hi_priority_fraction);
        d.f64(cfg.deadline_hi);
        d.f64(cfg.deadline_lo);
        d.f64(cfg.tail_rest);
        d.i64(cfg.idle_trace_samples);
        d.i64(static_cast<int>(cfg.trace_mode));
        d.sz(cfg.trace_capacity);
        d.boolean(cfg.keep_task_results);
        d.i64(static_cast<int>(cfg.idle_model));
        d.f64(cfg.idle_tolerance);
        d.boolean(cfg.generic_dispatch);
        d.boolean(cfg.pipeline_build);
        d.boolean(cfg.verify_pipeline_build);
        d.f64(cfg.policy.risk_quantile);
        d.i64(static_cast<int>(cfg.surrogate.tier));
        d.i64(cfg.surrogate.min_calibration);
        d.f64(cfg.surrogate.audit_period);
        d.f64(cfg.surrogate.tolerance);
        d.i64(cfg.surrogate.profile_samples);
        // validate_checkpoints is excluded: paranoia does not alter
        // the trajectory.
        return crc32(d.buffer().data(), d.size());
    }
};

std::uint32_t
scenarioConfigDigest(const ScenarioConfig &cfg)
{
    return CheckpointIO::digest(cfg);
}

std::vector<std::uint8_t>
serializeCheckpoint(const ScenarioConfig &cfg,
                    const ScenarioCheckpoint &ck)
{
    BlobWriter w;
    w.boolean(ck.done);
    CheckpointIO::write(w, ck.arrivals);
    CheckpointIO::write(w, ck.thermal);
    w.vecF64(ck.policy_state);
    w.f64(ck.now);
    w.f64(ck.busy);
    w.u64(ck.tasks_completed);
    w.i64(ck.sprints_granted);
    w.i64(ck.sprints_denied);
    w.i64(ck.sprints_exhausted);
    w.i64(ck.hardware_throttles);
    w.i64(ck.preemptions);
    w.i64(ck.tasks_dropped);
    w.i64(ck.deadlines_met);
    w.i64(ck.deadlines_missed);
    w.f64(ck.peak_junction);
    w.f64(ck.total_energy);
    w.f64(ck.total_sprint_time);
    w.f64(ck.total_sprint_energy);
    w.f64(ck.peak_melt);
    CheckpointIO::write(w, ck.p50);
    CheckpointIO::write(w, ck.p95);
    CheckpointIO::write(w, ck.melt_cycles);
    CheckpointIO::write(w, ck.traces);
    CheckpointIO::write(w, ck.surrogate);
    w.vec(ck.tasks, [](BlobWriter &w2, const ScenarioTaskResult &t) {
        CheckpointIO::write(w2, t);
    });
    w.boolean(ck.have_peek);
    if (ck.have_peek)
        CheckpointIO::write(w, ck.peek);
    w.sz(ck.ready.size());
    for (const auto &ex : ck.ready) {
        if (ex == nullptr)
            unsupported("null execution in the ready queue");
        CheckpointIO::writeExecution(w, cfg, *ex);
    }
    const bool has_warm = ck.warm_machine != nullptr;
    w.boolean(has_warm);
    if (has_warm)
        CheckpointIO::writeWarmHusk(w, cfg, *ck.warm_machine);
    return BlobContainer::seal(scenarioConfigDigest(cfg), w.take());
}

ScenarioCheckpoint
deserializeCheckpoint(const ScenarioConfig &cfg,
                      const std::vector<std::uint8_t> &blob)
{
    BlobReader r = BlobContainer::open(blob, scenarioConfigDigest(cfg));
    ScenarioCheckpoint ck;
    ck.done = r.boolean();
    CheckpointIO::read(r, ck.arrivals);
    CheckpointIO::read(r, ck.thermal);
    ck.policy_state = r.vecF64();
    ck.now = r.f64();
    ck.busy = r.f64();
    ck.tasks_completed = r.u64();
    ck.sprints_granted = static_cast<int>(r.i64());
    ck.sprints_denied = static_cast<int>(r.i64());
    ck.sprints_exhausted = static_cast<int>(r.i64());
    ck.hardware_throttles = static_cast<int>(r.i64());
    ck.preemptions = static_cast<int>(r.i64());
    ck.tasks_dropped = static_cast<int>(r.i64());
    ck.deadlines_met = static_cast<int>(r.i64());
    ck.deadlines_missed = static_cast<int>(r.i64());
    ck.peak_junction = r.f64();
    ck.total_energy = r.f64();
    ck.total_sprint_time = r.f64();
    ck.total_sprint_energy = r.f64();
    ck.peak_melt = r.f64();
    CheckpointIO::read(r, ck.p50);
    CheckpointIO::read(r, ck.p95);
    CheckpointIO::read(r, ck.melt_cycles);
    CheckpointIO::read(r, ck.traces);
    CheckpointIO::read(r, ck.surrogate);
    ck.tasks = r.vec<ScenarioTaskResult>(1, [](BlobReader &r2) {
        ScenarioTaskResult t;
        CheckpointIO::read(r2, t);
        return t;
    });
    ck.have_peek = r.boolean();
    if (ck.have_peek)
        CheckpointIO::read(r, ck.peek);
    const std::size_t nready = r.sz();
    ck.ready.reserve(nready);
    for (std::size_t i = 0; i < nready; ++i)
        ck.ready.push_back(CheckpointIO::readExecution(r, cfg));
    const bool has_warm = r.boolean();
    if (has_warm)
        CheckpointIO::readWarmHusk(r, cfg, ck);
    r.expectEnd();
    return ck;
}

void
validateCheckpoint(const ScenarioConfig &cfg,
                   const ScenarioCheckpoint &ck)
{
    CheckpointIO::validate(cfg, ck);
}

// ----- CheckpointStore --------------------------------------------------

namespace {

namespace fs = std::filesystem;

[[noreturn]] void
ioError(const std::string &what)
{
    throw CheckpointError(CheckpointError::Kind::Io, what);
}

/** Read a whole file; empty optional-style flag on failure. */
bool
readFileBytes(const std::string &path, std::vector<std::uint8_t> &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    in.seekg(0, std::ios::end);
    const std::streamoff len = in.tellg();
    if (len < 0)
        return false;
    in.seekg(0, std::ios::beg);
    out.resize(static_cast<std::size_t>(len));
    if (len > 0)
        in.read(reinterpret_cast<char *>(out.data()), len);
    return static_cast<bool>(in);
}

void
writeFileAtomic(const std::string &path, const void *data,
                std::size_t n)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            ioError("cannot open " + tmp + " for writing");
        out.write(static_cast<const char *>(data),
                  static_cast<std::streamsize>(n));
        out.flush();
        if (!out)
            ioError("short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        ioError("cannot rename " + tmp + " to " + path);
}

} // namespace

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir))
{
}

CheckpointStore::~CheckpointStore()
{
    for (const auto &lock : writer_locks_)
        ::close(lock.second); // closing the fd releases the flock
}

std::string
CheckpointStore::lockPath(int shard) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "shard%04d.lock", shard);
    return dir_ + "/" + name;
}

void
CheckpointStore::lockShardWriter(int shard)
{
    for (const auto &lock : writer_locks_) {
        if (lock.first == shard)
            return; // already ours for this store's lifetime
    }
    const std::string path = lockPath(shard);
    const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
                          0644);
    if (fd < 0)
        ioError("cannot open writer lock " + path);
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
        ::close(fd);
        ioError("another live writer holds shard " +
                std::to_string(shard) + "'s checkpoint lock (" + path +
                "); refusing to publish or prune its files");
    }
    writer_locks_.emplace_back(shard, fd);
}

std::string
CheckpointStore::checkpointPath(int shard, std::uint64_t seq) const
{
    char name[64];
    std::snprintf(name, sizeof(name), "shard%04d-%012llu.ck", shard,
                  static_cast<unsigned long long>(seq));
    return dir_ + "/" + name;
}

std::string
CheckpointStore::manifestPath(int shard) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "shard%04d.manifest", shard);
    return dir_ + "/" + name;
}

void
CheckpointStore::save(int shard, std::uint64_t seq,
                      const std::vector<std::uint8_t> &blob)
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        ioError("cannot create checkpoint directory " + dir_ + ": " +
                ec.message());

    // Single-writer enforcement: hold this shard's advisory lock
    // before publishing or pruning anything (see the class comment).
    lockShardWriter(shard);

    // Publish the checkpoint, then the manifest naming it; both via
    // write-temp-then-rename so a crash at any instant leaves either
    // the previous complete state or the new one, never a torn file.
    const std::string path = checkpointPath(shard, seq);
    writeFileAtomic(path, blob.data(), blob.size());
    const std::string manifest_body =
        fs::path(path).filename().string() + "\n";
    writeFileAtomic(manifestPath(shard), manifest_body.data(),
                    manifest_body.size());

    // Prune to the two newest checkpoints of this shard (the
    // manifest target plus one fallback).
    char prefix[32];
    std::snprintf(prefix, sizeof(prefix), "shard%04d-", shard);
    std::vector<std::pair<std::uint64_t, fs::path>> kept;
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        const std::string fname = entry.path().filename().string();
        unsigned long long s = 0;
        if (fname.rfind(prefix, 0) != 0 ||
            fname.size() <= std::strlen(prefix) + 3 ||
            fname.substr(fname.size() - 3) != ".ck")
            continue;
        if (std::sscanf(fname.c_str() + std::strlen(prefix), "%llu",
                        &s) != 1)
            continue;
        kept.emplace_back(static_cast<std::uint64_t>(s), entry.path());
    }
    std::sort(kept.begin(), kept.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });
    for (std::size_t i = 2; i < kept.size(); ++i)
        fs::remove(kept[i].second, ec); // best effort
}

std::vector<CheckpointStore::Candidate>
CheckpointStore::loadCandidates(int shard) const
{
    std::vector<Candidate> out;
    auto addFile = [&](const std::string &path, std::uint64_t seq) {
        for (const Candidate &c : out) {
            if (c.seq == seq)
                return;
        }
        Candidate c;
        c.seq = seq;
        if (readFileBytes(path, c.blob))
            out.push_back(std::move(c));
    };

    char prefix[32];
    std::snprintf(prefix, sizeof(prefix), "shard%04d-", shard);
    auto seqOf = [&](const std::string &fname,
                     std::uint64_t &seq) -> bool {
        unsigned long long s = 0;
        if (fname.rfind(prefix, 0) != 0 ||
            fname.size() <= std::strlen(prefix) + 3 ||
            fname.substr(fname.size() - 3) != ".ck")
            return false;
        if (std::sscanf(fname.c_str() + std::strlen(prefix), "%llu",
                        &s) != 1)
            return false;
        seq = static_cast<std::uint64_t>(s);
        return true;
    };

    // The manifest-named checkpoint is the preferred candidate.
    std::vector<std::uint8_t> manifest;
    if (readFileBytes(manifestPath(shard), manifest)) {
        std::string fname(manifest.begin(), manifest.end());
        const std::size_t nl = fname.find('\n');
        if (nl != std::string::npos)
            fname.resize(nl);
        std::uint64_t seq = 0;
        if (seqOf(fname, seq))
            addFile(dir_ + "/" + fname, seq);
    }

    // Any other retained checkpoint of this shard, newest first.
    std::error_code ec;
    std::vector<std::pair<std::uint64_t, std::string>> extra;
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        const std::string fname = entry.path().filename().string();
        std::uint64_t seq = 0;
        if (seqOf(fname, seq))
            extra.emplace_back(seq, entry.path().string());
    }
    std::sort(extra.begin(), extra.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });
    for (const auto &e : extra)
        addFile(e.second, e.first);
    return out;
}

} // namespace csprint
