#include "sprint/experiment.hh"

#include "common/logging.hh"

namespace csprint {

namespace {

/** Apply the bandwidth and LLC multipliers to a machine config. */
void
applyBandwidth(MachineConfig &machine, double mult)
{
    machine.memory.channel_bytes_per_sec *= mult;
}

/** Apply the spec's spot-configurable machine knobs. */
void
applyMachineKnobs(MachineConfig &machine, const ExperimentSpec &spec)
{
    machine.loop = spec.loop;
    machine.dispatch_threads = spec.dispatch_threads;
    machine.dispatch_gang = spec.dispatch_gang;
    applyBandwidth(machine, spec.bandwidth_mult);
}

void
applyL2Scale(MachineConfig &machine, double scale)
{
    if (scale == 1.0)
        return;
    // Keep associativity and line size; round capacity down to a
    // power-of-two set count.
    std::size_t bytes = static_cast<std::size_t>(
        static_cast<double>(machine.l2.size_bytes) * scale);
    std::size_t sets = bytes / (machine.l2.line_bytes *
                                static_cast<std::size_t>(
                                    machine.l2.assoc));
    std::size_t pow2 = 1;
    while (pow2 * 2 <= sets)
        pow2 *= 2;
    machine.l2.size_bytes = pow2 * machine.l2.line_bytes *
                            static_cast<std::size_t>(machine.l2.assoc);
}

} // namespace

RunResult
runBaselineExperiment(const ExperimentSpec &spec)
{
    const ParallelProgram program =
        buildKernelProgram(spec.kernel, spec.size, spec.seed);
    SprintConfig cfg = SprintConfig::baseline();
    applyMachineKnobs(cfg.machine, spec);
    applyL2Scale(cfg.machine, spec.l2_scale);
    return runSprint(program, cfg);
}

RunResult
runParallelSprintExperiment(const ExperimentSpec &spec)
{
    const ParallelProgram program =
        buildKernelProgram(spec.kernel, spec.size, spec.seed);
    SprintConfig cfg = SprintConfig::parallelSprint(
        spec.cores, spec.pcm_mass, spec.time_scale);
    applyMachineKnobs(cfg.machine, spec);
    applyL2Scale(cfg.machine, spec.l2_scale);
    return runSprint(program, cfg);
}

RunResult
runDvfsSprintExperiment(const ExperimentSpec &spec)
{
    const ParallelProgram program =
        buildKernelProgram(spec.kernel, spec.size, spec.seed);
    SprintConfig cfg = SprintConfig::dvfsSprint(
        kPowerHeadroom, spec.pcm_mass, spec.time_scale);
    applyMachineKnobs(cfg.machine, spec);
    applyL2Scale(cfg.machine, spec.l2_scale);
    return runSprint(program, cfg);
}

double
speedupOver(const RunResult &baseline, const RunResult &run)
{
    SPRINT_ASSERT(run.task_time > 0.0 && baseline.task_time > 0.0,
                  "zero task time");
    return baseline.task_time / run.task_time;
}

double
energyRatio(const RunResult &baseline, const RunResult &run)
{
    SPRINT_ASSERT(baseline.dynamic_energy > 0.0, "zero baseline energy");
    return run.dynamic_energy / baseline.dynamic_energy;
}

} // namespace csprint
