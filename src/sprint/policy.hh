/**
 * @file
 * Pluggable sprint policies: the decision layer of the coupled
 * simulation. A SprintPolicy owns every question the platform asks
 * during a run — "should this task sprint at all?" and, per energy
 * sample, "keep sprinting, stop, or throttle?" — so the engine
 * (simulation.cc's samplePump and the Scenario engine) stays a pure
 * mechanism that executes decisions.
 *
 * Contract: onSample() must advance the package thermal model by
 * exactly @p dt at the sampled power (the governor-backed policies do
 * this through SprintGovernor::onSample; others use the
 * advancePackage() helper). The engine reads the package only after
 * onSample() returns, so the policy is the single writer of thermal
 * state during a task. Between tasks the Scenario engine cools the
 * package itself; beginTask() is the policy's hook to re-anchor any
 * budget snapshot against the live (possibly still-warm) package.
 */

#ifndef CSPRINT_SPRINT_POLICY_HH
#define CSPRINT_SPRINT_POLICY_HH

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "sprint/governor.hh"
#include "thermal/package.hh"

namespace csprint {

/** Absolute-deadline sentinel: the task has no deadline. */
constexpr Seconds kNoDeadline =
    std::numeric_limits<double>::infinity();

/**
 * What a policy sees about a timeline task when making scheduling
 * decisions (mid-task arrivals, ready-queue ordering).
 */
struct TaskSnapshot
{
    Seconds arrival = 0.0;
    Seconds deadline = kNoDeadline; ///< absolute; kNoDeadline when none
    int priority = 0;               ///< larger = more important
    Seconds service = 0.0;          ///< machine time already spent
    bool started = false;           ///< dispatched at least once
    bool sprint_granted = false;    ///< valid once started
};

/**
 * The structure of a policy's pickNext() order, when it has one the
 * engine can exploit. Fifo and Urgency orders depend only on per-task
 * constants (priority, absolute deadline, arrival), so the Scenario
 * engine keeps its ready queue in a priority heap and dispatches in
 * O(log n) instead of materializing a TaskSnapshot per queued task on
 * every dispatch. Custom keeps the generic materialize-and-scan path.
 */
enum class DispatchOrder
{
    Fifo,    ///< always index 0 (the base-class pickNext)
    Urgency, ///< priority desc, deadline asc, arrival asc, stable
    Custom,  ///< opaque: the engine materializes and calls pickNext
};

/** What the engine should do with a task that arrives mid-task. */
enum class ArrivalDecision
{
    Queue,   ///< let the running task continue; newcomer waits
    Preempt, ///< suspend the running task at this sample boundary
    Drop,    ///< reject the newcomer outright (counted, never run)
};

/** What the platform should do after one energy sample. */
enum class SprintDecision
{
    Continue,   ///< keep the current configuration
    StopSprint, ///< software: migrate to one core / drop the boost
    Throttle,   ///< hardware: clamp frequency (software missed)
};

/** The concrete policies shipped with the library. */
enum class SprintPolicyKind
{
    GreedyActivity,   ///< activity-budget governor (seed behaviour)
    Thermometer,      ///< ground-truth junction-temperature governor
    DutyCycle,        ///< sprint-and-rest paced (Section 3 live)
    AdaptiveHeadroom, ///< re-sprint only after budget recovery
    NeverSprint,      ///< non-sprinting baseline
    Qos,              ///< deadline-driven priority preemption
    ModelPredictive,  ///< forecast-based preempt-vs-finish decisions
};

/** Stable lowercase name for reports and bench JSON keys. */
const char *sprintPolicyKindName(SprintPolicyKind kind);

/** Factory knobs; unused fields are ignored by the selected kind. */
struct SprintPolicyParams
{
    SprintPolicyKind kind = SprintPolicyKind::GreedyActivity;
    /** Tuning for the governor behind every thermally-safe policy. */
    GovernorConfig governor;
    /**
     * DutyCycle: the expected task inter-arrival period (in the same
     * time-scaled seconds as the package) the pacing budget is
     * amortized over. Must be positive for that kind.
     */
    Seconds pacing_period = 0.0;
    /**
     * AdaptiveHeadroom: fraction of the cold-start sprint budget that
     * must have recovered (budgetAfterRest-style, read off the live
     * package) before a new task is granted a sprint. ModelPredictive
     * reuses it as the budget-recovery fraction its forecasts treat
     * as "a fresh sprint grant is available again".
     */
    double resume_fraction = 0.5;
    /**
     * Qos: safety factor on the deadline-risk forecast — preempt when
     * now + qos_slack * (runner's remaining work + the newcomer's own
     * work) overshoots the newcomer's deadline.
     */
    double qos_slack = 1.0;
    /**
     * Qos/ModelPredictive: prior service-time estimate used until the
     * policy has observed completed tasks (0 = no prior; the policies
     * then queue conservatively until they have learned one).
     */
    Seconds service_prior = 0.0;
    /**
     * Qos/ModelPredictive: 0 (the default) prices waiting time with
     * the learned mean service — the classic behaviour, bit-identical
     * to the pre-quantile policies. A value in (0, 1) prices it
     * risk-aware instead: the estimator's streaming P² quantile of
     * the class's service (never below the mean path), so a p95-aware
     * policy preempts for a tight deadline that the mean would gamble
     * on.
     */
    double risk_quantile = 0.0;
};

/**
 * Streaming service-time statistics the preemptive policies learn
 * from completed tasks, bucketed by (priority class, sprinted) — the
 * class split keeps a burst of short interactive tasks from
 * poisoning the remaining-work estimate of a long batch task. Each
 * cell tracks the running mean plus a streaming P² quantile (p95 by
 * default), so a policy can price waiting time risk-aware instead of
 * by the mean alone. An unobserved cell falls back to the same
 * class's other sprint state, then to the configured prior, then to
 * cross-class data: a prior outranks cross-class observations, so it
 * keeps authority over a class until that class itself has been
 * seen. Value semantics (checkpoints as a flat double vector).
 */
class ServiceEstimator
{
  public:
    /** Number of checkpointed doubles (save()/restore()). */
    static constexpr std::size_t kStateSize =
        4 * (2 + P2Quantile::kStateSize);

    explicit ServiceEstimator(Seconds prior = 0.0,
                              double quantile = 0.95)
        : prior_(prior)
    {
        for (int cls = 0; cls < 2; ++cls) {
            for (int spr = 0; spr < 2; ++spr)
                cells[cls][spr].q = P2Quantile(quantile);
        }
    }

    /** Fold one completed task's observed service time in. */
    void
    add(const TaskSnapshot &task, Seconds service)
    {
        Cell &cell = cells[clsOf(task)][task.sprint_granted ? 1 : 0];
        cell.sum += service;
        cell.n += 1.0;
        cell.q.add(service);
    }

    /** Expected service of @p task's class if (not) sprinted. */
    Seconds
    estimateIf(const TaskSnapshot &task, bool sprinted) const
    {
        const Cell *cell = lookup(task, sprinted);
        return cell ? cell->mean() : prior_ > 0.0 ? prior_ : 0.0;
    }

    /**
     * Streaming quantile of @p task's class if (not) sprinted, with
     * the same fallback chain as estimateIf (the prior stands in when
     * nothing relevant has been observed).
     */
    Seconds
    quantileIf(const TaskSnapshot &task, bool sprinted) const
    {
        const Cell *cell = lookup(task, sprinted);
        return cell ? cell->q.value() : prior_ > 0.0 ? prior_ : 0.0;
    }

    /**
     * Risk-priced service: the tracked quantile of the class, never
     * below the mean path (a quantile below the mean would make a
     * "pessimistic" policy more optimistic than the classic one).
     */
    Seconds
    pessimisticIf(const TaskSnapshot &task, bool sprinted) const
    {
        return std::max(estimateIf(task, sprinted),
                        quantileIf(task, sprinted));
    }

    /** Expected total service of @p task as it is (or would be) run. */
    Seconds
    estimate(const TaskSnapshot &task) const
    {
        return estimateIf(task, !task.started || task.sprint_granted);
    }

    /** Expected service still owed to @p task (never negative). */
    Seconds
    remaining(const TaskSnapshot &task) const
    {
        const Seconds rem = estimate(task) - task.service;
        return rem > 0.0 ? rem : 0.0;
    }

    /** Risk-priced service still owed to @p task (never negative). */
    Seconds
    pessimisticRemaining(const TaskSnapshot &task) const
    {
        const Seconds rem =
            pessimisticIf(task, !task.started || task.sprint_granted) -
            task.service;
        return rem > 0.0 ? rem : 0.0;
    }

    /** Flat checkpoint state (restore() accepts exactly this). */
    std::vector<double>
    save() const
    {
        std::vector<double> state(kStateSize);
        double *out = state.data();
        for (int cls = 0; cls < 2; ++cls) {
            for (int spr = 0; spr < 2; ++spr) {
                const Cell &cell = cells[cls][spr];
                *out++ = cell.sum;
                *out++ = cell.n;
                cell.q.save(out);
                out += P2Quantile::kStateSize;
            }
        }
        return state;
    }

    /** Restore what save() produced (kStateSize doubles). */
    void
    restore(const double *state)
    {
        for (int cls = 0; cls < 2; ++cls) {
            for (int spr = 0; spr < 2; ++spr) {
                Cell &cell = cells[cls][spr];
                cell.sum = *state++;
                cell.n = *state++;
                cell.q.restore(state);
                state += P2Quantile::kStateSize;
            }
        }
    }

  private:
    struct Cell
    {
        double sum = 0.0;
        double n = 0.0;
        P2Quantile q{0.95};
        Seconds mean() const { return sum / n; }
    };

    static int clsOf(const TaskSnapshot &task)
    {
        return task.priority > 0 ? 1 : 0;
    }

    /**
     * The cell the estimate chain resolves to: own cell, then the
     * same class's other sprint state; null past that point (the
     * prior / cross-class steps take over).
     */
    const Cell *
    lookup(const TaskSnapshot &task, bool sprinted) const
    {
        const int cls = clsOf(task);
        const int spr = sprinted ? 1 : 0;
        if (cells[cls][spr].n > 0.0)
            return &cells[cls][spr];
        if (cells[cls][1 - spr].n > 0.0)
            return &cells[cls][1 - spr];
        if (prior_ > 0.0)
            return nullptr;
        if (cells[1 - cls][spr].n > 0.0)
            return &cells[1 - cls][spr];
        if (cells[1 - cls][1 - spr].n > 0.0)
            return &cells[1 - cls][1 - spr];
        return nullptr;
    }

    Cell cells[2][2];
    Seconds prior_;
};

/**
 * Decision logic for one platform. Policies are stateful per task;
 * the Scenario engine reuses one policy instance across a whole task
 * timeline (beginTask re-arms it), so cross-task state — duty-cycle
 * pacing debt, headroom thresholds — lives here too.
 */
class SprintPolicy
{
  public:
    virtual ~SprintPolicy() = default;

    /** Stable name for reports. */
    virtual const char *name() const = 0;

    /**
     * Scenario-engine hook, asked once per task arrival before the
     * machine is configured: true grants the sprint configuration,
     * false runs the task consolidated on one core.
     */
    virtual bool wantSprint(const MobilePackageModel &package)
    {
        (void)package;
        return true;
    }

    /**
     * Called once per task, after the activation ramp has been
     * applied to @p package, before the first sample.
     */
    virtual void beginTask(MobilePackageModel &package) { (void)package; }

    /**
     * Fold one sample (energy @p energy over wall time @p dt) into
     * the policy and decide. Must advance @p package by @p dt at the
     * sampled power (see the file comment for the contract).
     */
    virtual SprintDecision onSample(MobilePackageModel &package,
                                    Seconds dt, Joules energy) = 0;

    /**
     * Declares that this policy may preempt, drop, or reorder queued
     * work (onArrival / pickNext are non-default). The engine skips
     * mid-task arrival delivery entirely for non-preemptive policies
     * — observationally identical for Queue-only behaviour, since a
     * queued mid-task arrival and a dispatch-time arrival dispatch at
     * the same instant — which keeps million-task saturating
     * timelines from materializing their whole queue.
     */
    virtual bool preemptive() const { return false; }

    /**
     * Mid-task arrival (Scenario engine, preemptive() policies only):
     * @p incoming arrived at timeline time @p now while @p running is
     * on the machine. Queue keeps the classic run-to-completion
     * behaviour (the default), Preempt suspends the runner at this
     * sample boundary (it resumes later from its live machine state),
     * Drop rejects the newcomer.
     */
    virtual ArrivalDecision
    onArrival(const MobilePackageModel &package, Seconds now,
              const TaskSnapshot &running, const TaskSnapshot &incoming)
    {
        (void)package;
        (void)now;
        (void)running;
        (void)incoming;
        return ArrivalDecision::Queue;
    }

    /**
     * Choose the next ready task to dispatch. @p ready is in stable
     * arrival order (preempted tasks after the queue position they
     * re-entered at); the default is FIFO. Must return an index into
     * @p ready.
     */
    virtual std::size_t
    pickNext(const MobilePackageModel &package, Seconds now,
             const std::vector<TaskSnapshot> &ready)
    {
        (void)package;
        (void)now;
        (void)ready;
        return 0;
    }

    /**
     * Declared structure of pickNext()'s order. Must agree with
     * pickNext(): the generic scan stays the semantic definition and
     * the heap dispatch is differentially gated against it
     * (ScenarioConfig::generic_dispatch). A subclass that overrides
     * pickNext() with anything but the stock orders must override
     * this too — Custom is always safe.
     */
    virtual DispatchOrder dispatchOrder() const
    {
        return DispatchOrder::Fifo;
    }

    /**
     * A timeline task finished after @p service seconds of machine
     * time (ramps included, suspended waiting excluded); feedback for
     * service-time learners.
     */
    virtual void
    onTaskComplete(const TaskSnapshot &task, Seconds service)
    {
        (void)task;
        (void)service;
    }

    /**
     * Cross-task state for checkpoint/restore (scenario sharding): a
     * flat vector of doubles, empty when the policy carries no state
     * across tasks. restoreState() must accept exactly what
     * saveState() produced; per-task state (the governor, pacing
     * debt) is re-armed by beginTask() and is never snapshotted —
     * checkpoints are taken at task boundaries only.
     */
    virtual std::vector<double> saveState() const { return {}; }

    /** Restore what saveState() produced (see above). */
    virtual void restoreState(const std::vector<double> &state)
    {
        (void)state;
    }

    /**
     * Idle-gap advance: zero die power through the quiescent
     * super-stepper (ThermalNetwork::advanceQuiescent). The Scenario
     * engine's fast idle path (coolPackage under
     * IdleModel::Quiescent) routes through this; tolerance per
     * PERF.md, "Long-horizon scenarios".
     */
    static void
    advanceIdle(MobilePackageModel &package, Seconds dt,
                Celsius tol = 0.01)
    {
        package.setDiePower(0.0);
        package.stepQuiescent(dt, tol);
    }

  protected:
    /** Default thermal advance for policies without a governor. */
    static void
    advancePackage(MobilePackageModel &package, Seconds dt, Joules energy)
    {
        package.setDiePower(energy / dt);
        package.step(dt);
    }
};

/**
 * Shared plumbing for policies that delegate thermal tracking and the
 * grace-window -> hardware-throttle escalation to a SprintGovernor
 * (re-armed against the live package at each beginTask).
 */
class GovernorBackedPolicy : public SprintPolicy
{
  public:
    explicit GovernorBackedPolicy(const GovernorConfig &cfg)
        : gov_cfg(cfg)
    {
    }

    void beginTask(MobilePackageModel &package) override
    {
        governor.emplace(gov_cfg, package);
    }

    SprintDecision onSample(MobilePackageModel &package, Seconds dt,
                            Joules energy) override;

    /** The live governor; valid after beginTask(). */
    const SprintGovernor &currentGovernor() const { return *governor; }

  protected:
    GovernorConfig gov_cfg;
    std::optional<SprintGovernor> governor;
};

/**
 * Today's hard-wired behaviour as a policy: sprint immediately, track
 * the activity-based energy budget, stop at the margin, escalate to
 * the throttle past the grace window. Bit-for-bit identical to the
 * seed runSprint when driven through samplePump.
 */
class GreedyActivityPolicy : public GovernorBackedPolicy
{
  public:
    explicit GreedyActivityPolicy(GovernorConfig cfg = GovernorConfig());

    const char *name() const override { return "greedy"; }
};

/** Ground-truth variant: terminate on measured junction temperature. */
class ThermometerPolicy : public GovernorBackedPolicy
{
  public:
    explicit ThermometerPolicy(GovernorConfig cfg = GovernorConfig());

    const char *name() const override { return "thermometer"; }
};

/**
 * Sprint-and-rest pacing (paper Section 3) as a live policy: each
 * task may spend above the sustainable envelope only the energy the
 * package can shed over one pacing period — the energy-conservation
 * argument behind sustainableDutyCycle() — so a burst train settles
 * onto the analytical duty cycle instead of draining the full budget
 * on the first task. The governor still runs underneath as the
 * thermal-safety net (its stop and throttle take precedence).
 */
class DutyCyclePolicy : public GovernorBackedPolicy
{
  public:
    DutyCyclePolicy(Seconds pacing_period, GovernorConfig cfg);

    const char *name() const override { return "duty-cycle"; }

    void beginTask(MobilePackageModel &package) override;
    SprintDecision onSample(MobilePackageModel &package, Seconds dt,
                            Joules energy) override;

    /** Duty-cycle bound the current task is being paced against. */
    double currentDutyCycle() const { return duty_bound; }

  private:
    Seconds period;
    Joules pacing_allowance = 0.0; ///< above-TDP energy allowed per task
    Joules above_energy = 0.0;     ///< above-TDP energy spent this task
    Seconds above_time = 0.0;      ///< above-TDP time this task
    double duty_bound = 1.0;       ///< sustainableDutyCycle of last sample
    bool paced_out = false;        ///< latched StopSprint
};

/**
 * Budget-recovery gate: a task is granted a sprint only when the live
 * package's sprint budget (the budgetAfterRest() quantity, read off
 * the real thermal state) has recovered past a fraction of the
 * cold-start budget; granted sprints then run greedily.
 */
class AdaptiveHeadroomPolicy : public GovernorBackedPolicy
{
  public:
    AdaptiveHeadroomPolicy(double resume_fraction, GovernorConfig cfg);

    const char *name() const override { return "adaptive-headroom"; }

    bool wantSprint(const MobilePackageModel &package) override;

    std::vector<double> saveState() const override;
    void restoreState(const std::vector<double> &state) override;

  private:
    double resume_fraction;
    Joules cold_budget = -1.0; ///< lazily computed from params
};

/**
 * QoS-aware preemption (the paper's Section 5 responsiveness
 * discussion made operational): deadline-driven grants that preempt
 * low-priority work when a newcomer's deadline is at risk. The risk
 * forecast is the learned service-time estimate — waiting behind the
 * runner's remaining work plus the newcomer's own work must still
 * meet the deadline, or the runner is suspended. Dispatch order is
 * priority-major, earliest-deadline-first within a priority class.
 * Thermal safety still comes from the governor underneath.
 */
class QosPolicy : public GovernorBackedPolicy
{
  public:
    QosPolicy(double slack, Seconds service_prior, GovernorConfig cfg,
              double risk_quantile = 0.0);

    const char *name() const override { return "qos"; }
    bool preemptive() const override { return true; }

    ArrivalDecision onArrival(const MobilePackageModel &package,
                              Seconds now, const TaskSnapshot &running,
                              const TaskSnapshot &incoming) override;
    std::size_t pickNext(const MobilePackageModel &package, Seconds now,
                         const std::vector<TaskSnapshot> &ready) override;
    DispatchOrder dispatchOrder() const override
    {
        return DispatchOrder::Urgency;
    }
    void onTaskComplete(const TaskSnapshot &task,
                        Seconds service) override;

    std::vector<double> saveState() const override;
    void restoreState(const std::vector<double> &state) override;

  private:
    /** Service-time price of @p task, mean or risk-quantile path. */
    Seconds priceIf(const TaskSnapshot &task, bool sprinted) const;

    /** Remaining-work price of @p task, mean or risk-quantile path. */
    Seconds priceRemaining(const TaskSnapshot &task) const;

    double slack;
    bool risk_aware;
    ServiceEstimator est;
};

/**
 * Model-predictive preemption: on each mid-task arrival, forecast the
 * completion times of both serving orders (finish-the-runner-first vs
 * preempt-now) from the learned service estimates and the package's
 * thermal forecasts — approxCooldown() seeds the search horizon and
 * timeToBudgetFraction() (on a scratch copy of the live state) prices
 * whether the second-served task will still get a sprint grant or run
 * at the consolidated estimate — then picks the order that meets more
 * deadlines (summed tardiness breaks ties; a full tie queues).
 */
class ModelPredictivePolicy : public GovernorBackedPolicy
{
  public:
    ModelPredictivePolicy(double grant_fraction, Seconds service_prior,
                          GovernorConfig cfg,
                          double risk_quantile = 0.0);

    const char *name() const override { return "model-predictive"; }
    bool preemptive() const override { return true; }

    ArrivalDecision onArrival(const MobilePackageModel &package,
                              Seconds now, const TaskSnapshot &running,
                              const TaskSnapshot &incoming) override;
    std::size_t pickNext(const MobilePackageModel &package, Seconds now,
                         const std::vector<TaskSnapshot> &ready) override;
    DispatchOrder dispatchOrder() const override
    {
        return DispatchOrder::Urgency;
    }
    void onTaskComplete(const TaskSnapshot &task,
                        Seconds service) override;

    std::vector<double> saveState() const override;
    void restoreState(const std::vector<double> &state) override;

  private:
    /** Forecast delay until a fresh sprint grant is possible. */
    Seconds regrantDelay(const MobilePackageModel &package) const;

    /** Service-time price of @p task, mean or risk-quantile path. */
    Seconds priceIf(const TaskSnapshot &task, bool sprinted) const;

    /** Remaining-work price of @p task, mean or risk-quantile path. */
    Seconds priceRemaining(const TaskSnapshot &task) const;

    double grant_fraction;
    bool risk_aware;
    ServiceEstimator est;
    mutable Joules cold_budget = -1.0; ///< lazily computed from params
};

/** Non-sprinting baseline: every task runs consolidated. */
class NeverSprintPolicy : public SprintPolicy
{
  public:
    const char *name() const override { return "never"; }

    bool wantSprint(const MobilePackageModel &package) override
    {
        (void)package;
        return false;
    }

    SprintDecision onSample(MobilePackageModel &package, Seconds dt,
                            Joules energy) override
    {
        advancePackage(package, dt, energy);
        return SprintDecision::Continue;
    }
};

/** Build the policy @p params describes. */
std::unique_ptr<SprintPolicy>
makeSprintPolicy(const SprintPolicyParams &params);

/** All policy kinds, in report order. */
const std::vector<SprintPolicyKind> &allSprintPolicyKinds();

} // namespace csprint

#endif // CSPRINT_SPRINT_POLICY_HH
