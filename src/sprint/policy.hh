/**
 * @file
 * Pluggable sprint policies: the decision layer of the coupled
 * simulation. A SprintPolicy owns every question the platform asks
 * during a run — "should this task sprint at all?" and, per energy
 * sample, "keep sprinting, stop, or throttle?" — so the engine
 * (simulation.cc's samplePump and the Scenario engine) stays a pure
 * mechanism that executes decisions.
 *
 * Contract: onSample() must advance the package thermal model by
 * exactly @p dt at the sampled power (the governor-backed policies do
 * this through SprintGovernor::onSample; others use the
 * advancePackage() helper). The engine reads the package only after
 * onSample() returns, so the policy is the single writer of thermal
 * state during a task. Between tasks the Scenario engine cools the
 * package itself; beginTask() is the policy's hook to re-anchor any
 * budget snapshot against the live (possibly still-warm) package.
 */

#ifndef CSPRINT_SPRINT_POLICY_HH
#define CSPRINT_SPRINT_POLICY_HH

#include <memory>
#include <optional>
#include <vector>

#include "common/units.hh"
#include "sprint/governor.hh"
#include "thermal/package.hh"

namespace csprint {

/** What the platform should do after one energy sample. */
enum class SprintDecision
{
    Continue,   ///< keep the current configuration
    StopSprint, ///< software: migrate to one core / drop the boost
    Throttle,   ///< hardware: clamp frequency (software missed)
};

/** The concrete policies shipped with the library. */
enum class SprintPolicyKind
{
    GreedyActivity,   ///< activity-budget governor (seed behaviour)
    Thermometer,      ///< ground-truth junction-temperature governor
    DutyCycle,        ///< sprint-and-rest paced (Section 3 live)
    AdaptiveHeadroom, ///< re-sprint only after budget recovery
    NeverSprint,      ///< non-sprinting baseline
};

/** Stable lowercase name for reports and bench JSON keys. */
const char *sprintPolicyKindName(SprintPolicyKind kind);

/** Factory knobs; unused fields are ignored by the selected kind. */
struct SprintPolicyParams
{
    SprintPolicyKind kind = SprintPolicyKind::GreedyActivity;
    /** Tuning for the governor behind every thermally-safe policy. */
    GovernorConfig governor;
    /**
     * DutyCycle: the expected task inter-arrival period (in the same
     * time-scaled seconds as the package) the pacing budget is
     * amortized over. Must be positive for that kind.
     */
    Seconds pacing_period = 0.0;
    /**
     * AdaptiveHeadroom: fraction of the cold-start sprint budget that
     * must have recovered (budgetAfterRest-style, read off the live
     * package) before a new task is granted a sprint.
     */
    double resume_fraction = 0.5;
};

/**
 * Decision logic for one platform. Policies are stateful per task;
 * the Scenario engine reuses one policy instance across a whole task
 * timeline (beginTask re-arms it), so cross-task state — duty-cycle
 * pacing debt, headroom thresholds — lives here too.
 */
class SprintPolicy
{
  public:
    virtual ~SprintPolicy() = default;

    /** Stable name for reports. */
    virtual const char *name() const = 0;

    /**
     * Scenario-engine hook, asked once per task arrival before the
     * machine is configured: true grants the sprint configuration,
     * false runs the task consolidated on one core.
     */
    virtual bool wantSprint(const MobilePackageModel &package)
    {
        (void)package;
        return true;
    }

    /**
     * Called once per task, after the activation ramp has been
     * applied to @p package, before the first sample.
     */
    virtual void beginTask(MobilePackageModel &package) { (void)package; }

    /**
     * Fold one sample (energy @p energy over wall time @p dt) into
     * the policy and decide. Must advance @p package by @p dt at the
     * sampled power (see the file comment for the contract).
     */
    virtual SprintDecision onSample(MobilePackageModel &package,
                                    Seconds dt, Joules energy) = 0;

    /**
     * Cross-task state for checkpoint/restore (scenario sharding): a
     * flat vector of doubles, empty when the policy carries no state
     * across tasks. restoreState() must accept exactly what
     * saveState() produced; per-task state (the governor, pacing
     * debt) is re-armed by beginTask() and is never snapshotted —
     * checkpoints are taken at task boundaries only.
     */
    virtual std::vector<double> saveState() const { return {}; }

    /** Restore what saveState() produced (see above). */
    virtual void restoreState(const std::vector<double> &state)
    {
        (void)state;
    }

    /**
     * Idle-gap advance: zero die power through the quiescent
     * super-stepper (ThermalNetwork::advanceQuiescent). The Scenario
     * engine's fast idle path (coolPackage under
     * IdleModel::Quiescent) routes through this; tolerance per
     * PERF.md, "Long-horizon scenarios".
     */
    static void
    advanceIdle(MobilePackageModel &package, Seconds dt,
                Celsius tol = 0.01)
    {
        package.setDiePower(0.0);
        package.stepQuiescent(dt, tol);
    }

  protected:
    /** Default thermal advance for policies without a governor. */
    static void
    advancePackage(MobilePackageModel &package, Seconds dt, Joules energy)
    {
        package.setDiePower(energy / dt);
        package.step(dt);
    }
};

/**
 * Shared plumbing for policies that delegate thermal tracking and the
 * grace-window -> hardware-throttle escalation to a SprintGovernor
 * (re-armed against the live package at each beginTask).
 */
class GovernorBackedPolicy : public SprintPolicy
{
  public:
    explicit GovernorBackedPolicy(const GovernorConfig &cfg)
        : gov_cfg(cfg)
    {
    }

    void beginTask(MobilePackageModel &package) override
    {
        governor.emplace(gov_cfg, package);
    }

    SprintDecision onSample(MobilePackageModel &package, Seconds dt,
                            Joules energy) override;

    /** The live governor; valid after beginTask(). */
    const SprintGovernor &currentGovernor() const { return *governor; }

  protected:
    GovernorConfig gov_cfg;
    std::optional<SprintGovernor> governor;
};

/**
 * Today's hard-wired behaviour as a policy: sprint immediately, track
 * the activity-based energy budget, stop at the margin, escalate to
 * the throttle past the grace window. Bit-for-bit identical to the
 * seed runSprint when driven through samplePump.
 */
class GreedyActivityPolicy : public GovernorBackedPolicy
{
  public:
    explicit GreedyActivityPolicy(GovernorConfig cfg = GovernorConfig());

    const char *name() const override { return "greedy"; }
};

/** Ground-truth variant: terminate on measured junction temperature. */
class ThermometerPolicy : public GovernorBackedPolicy
{
  public:
    explicit ThermometerPolicy(GovernorConfig cfg = GovernorConfig());

    const char *name() const override { return "thermometer"; }
};

/**
 * Sprint-and-rest pacing (paper Section 3) as a live policy: each
 * task may spend above the sustainable envelope only the energy the
 * package can shed over one pacing period — the energy-conservation
 * argument behind sustainableDutyCycle() — so a burst train settles
 * onto the analytical duty cycle instead of draining the full budget
 * on the first task. The governor still runs underneath as the
 * thermal-safety net (its stop and throttle take precedence).
 */
class DutyCyclePolicy : public GovernorBackedPolicy
{
  public:
    DutyCyclePolicy(Seconds pacing_period, GovernorConfig cfg);

    const char *name() const override { return "duty-cycle"; }

    void beginTask(MobilePackageModel &package) override;
    SprintDecision onSample(MobilePackageModel &package, Seconds dt,
                            Joules energy) override;

    /** Duty-cycle bound the current task is being paced against. */
    double currentDutyCycle() const { return duty_bound; }

  private:
    Seconds period;
    Joules pacing_allowance = 0.0; ///< above-TDP energy allowed per task
    Joules above_energy = 0.0;     ///< above-TDP energy spent this task
    Seconds above_time = 0.0;      ///< above-TDP time this task
    double duty_bound = 1.0;       ///< sustainableDutyCycle of last sample
    bool paced_out = false;        ///< latched StopSprint
};

/**
 * Budget-recovery gate: a task is granted a sprint only when the live
 * package's sprint budget (the budgetAfterRest() quantity, read off
 * the real thermal state) has recovered past a fraction of the
 * cold-start budget; granted sprints then run greedily.
 */
class AdaptiveHeadroomPolicy : public GovernorBackedPolicy
{
  public:
    AdaptiveHeadroomPolicy(double resume_fraction, GovernorConfig cfg);

    const char *name() const override { return "adaptive-headroom"; }

    bool wantSprint(const MobilePackageModel &package) override;

    std::vector<double> saveState() const override;
    void restoreState(const std::vector<double> &state) override;

  private:
    double resume_fraction;
    Joules cold_budget = -1.0; ///< lazily computed from params
};

/** Non-sprinting baseline: every task runs consolidated. */
class NeverSprintPolicy : public SprintPolicy
{
  public:
    const char *name() const override { return "never"; }

    bool wantSprint(const MobilePackageModel &package) override
    {
        (void)package;
        return false;
    }

    SprintDecision onSample(MobilePackageModel &package, Seconds dt,
                            Joules energy) override
    {
        advancePackage(package, dt, energy);
        return SprintDecision::Continue;
    }
};

/** Build the policy @p params describes. */
std::unique_ptr<SprintPolicy>
makeSprintPolicy(const SprintPolicyParams &params);

/** All policy kinds, in report order. */
const std::vector<SprintPolicyKind> &allSprintPolicyKinds();

} // namespace csprint

#endif // CSPRINT_SPRINT_POLICY_HH
