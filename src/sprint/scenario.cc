#include "sprint/scenario.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace csprint {

const char *
arrivalPatternName(ArrivalPattern pattern)
{
    switch (pattern) {
      case ArrivalPattern::Periodic:
        return "periodic";
      case ArrivalPattern::Bursty:
        return "bursty";
      case ArrivalPattern::Poisson:
        return "poisson";
      case ArrivalPattern::BackToBack:
        return "back-to-back";
    }
    SPRINT_PANIC("unknown arrival pattern");
}

const std::vector<ArrivalPattern> &
allArrivalPatterns()
{
    static const std::vector<ArrivalPattern> patterns = {
        ArrivalPattern::Periodic,
        ArrivalPattern::Bursty,
        ArrivalPattern::Poisson,
        ArrivalPattern::BackToBack,
    };
    return patterns;
}

std::vector<ScenarioTask>
buildArrivals(const ScenarioConfig &cfg)
{
    SPRINT_ASSERT(cfg.num_tasks >= 1, "scenario needs at least one task");
    SPRINT_ASSERT(cfg.pattern == ArrivalPattern::BackToBack ||
                      cfg.period > 0.0,
                  "arrival pattern needs a positive period");
    SPRINT_ASSERT(cfg.burst_size >= 1, "bursts need at least one task");

    std::vector<ScenarioTask> tasks(
        static_cast<std::size_t>(cfg.num_tasks));
    Rng rng(cfg.seed);
    Seconds poisson_clock = 0.0;
    for (int i = 0; i < cfg.num_tasks; ++i) {
        ScenarioTask &task = tasks[static_cast<std::size_t>(i)];
        task.kernel = cfg.kernel;
        task.size = cfg.size;
        task.seed = cfg.seed + static_cast<std::uint64_t>(i);
        switch (cfg.pattern) {
          case ArrivalPattern::Periodic:
            task.arrival = static_cast<double>(i) * cfg.period;
            break;
          case ArrivalPattern::Bursty:
            task.arrival =
                static_cast<double>(i / cfg.burst_size) * cfg.period +
                static_cast<double>(i % cfg.burst_size) *
                    cfg.burst_spacing;
            break;
          case ArrivalPattern::Poisson:
            // First arrival at t = 0; exponential gaps afterwards.
            if (i > 0)
                poisson_clock +=
                    -std::log(1.0 - rng.uniform()) * cfg.period;
            task.arrival = poisson_clock;
            break;
          case ArrivalPattern::BackToBack:
            task.arrival = 0.0;
            break;
        }
    }
    return tasks;
}

int
countMeltRefreezeCycles(const TimeSeries &melt, double rise, double fall)
{
    SPRINT_ASSERT(fall < rise, "hysteresis thresholds inverted");
    int cycles = 0;
    bool molten = false;
    for (std::size_t i = 0; i < melt.size(); ++i) {
        const double m = melt.valueAt(i);
        if (!molten && m >= rise) {
            molten = true;
        } else if (molten && m <= fall) {
            molten = false;
            ++cycles;
        }
    }
    return cycles;
}

namespace {

/** The platform with the sprint configuration withheld. */
SprintConfig
consolidatedPlatform(SprintConfig cfg)
{
    if (cfg.dvfs_boost != 1.0) {
        // Un-wire exactly what the dvfsSprint factory wired (and what
        // samplePump's StopSprint path restores): nominal frequency
        // and the nominal energy model. A non-boost custom energy
        // model is left alone.
        cfg.machine.freq_mult = 1.0;
        cfg.machine.energy = InstructionEnergyModel();
        cfg.dvfs_boost = 1.0;
    }
    cfg.sprint_cores = 1;
    cfg.num_threads = 1;
    cfg.activation_ramp = 0.0;  // nothing to power up
    cfg.machine.num_cores = 1;
    cfg.machine.num_threads = 1;
    return cfg;
}

/** Cool the package at zero die power, recording the traces. */
void
coolPackage(MobilePackageModel &package, ScenarioResult &out,
            Seconds from, Seconds duration, int samples)
{
    package.setDiePower(0.0);
    const int n = std::max(1, samples);
    const Seconds h = duration / n;
    for (int i = 0; i < n; ++i) {
        package.step(h);
        const Seconds t = from + static_cast<double>(i + 1) * h;
        out.junction_trace.add(t, package.junctionTemp());
        out.power_trace.add(t, 0.0);
        out.melt_trace.add(t, package.meltFraction());
    }
}

void
appendTrace(TimeSeries &dst, const TimeSeries &src)
{
    for (std::size_t i = 0; i < src.size(); ++i)
        dst.add(src.timeAt(i), src.valueAt(i));
}

/** Nearest-rank quantile of an unsorted sample set. */
Seconds
quantile(std::vector<Seconds> sorted, double q)
{
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    return sorted[std::min(n - 1, rank > 0 ? rank - 1 : 0)];
}

} // namespace

ScenarioResult
runScenario(const ScenarioConfig &cfg)
{
    const std::vector<ScenarioTask> timeline = buildArrivals(cfg);
    const std::unique_ptr<SprintPolicy> policy =
        makeSprintPolicy(cfg.policy);
    const SprintConfig denied_cfg = consolidatedPlatform(cfg.platform);

    MobilePackageModel package(cfg.platform.package);
    package.reset();

    ScenarioResult out;
    out.tasks.reserve(timeline.size());
    Seconds now = 0.0;
    Seconds busy = 0.0;

    // Warm-restart chain: the previous task's machine (and the
    // program it references) stay alive until the next machine has
    // adopted their cache state.
    std::unique_ptr<ParallelProgram> prev_program;
    std::unique_ptr<Machine> prev_machine;

    for (const ScenarioTask &task : timeline) {
        if (task.arrival > now) {
            coolPackage(package, out, now, task.arrival - now,
                        cfg.idle_trace_samples);
            now = task.arrival;
        }

        ScenarioTaskResult tr;
        tr.arrival = task.arrival;
        tr.start = now;
        tr.melt_at_start = package.meltFraction();
        tr.sprint_granted = policy->wantSprint(package);
        ++(tr.sprint_granted ? out.sprints_granted
                             : out.sprints_denied);

        const SprintConfig &run_cfg =
            tr.sprint_granted ? cfg.platform : denied_cfg;
        auto program = std::make_unique<ParallelProgram>(
            buildKernelProgram(task.kernel, task.size, task.seed));
        std::unique_ptr<Machine> machine =
            prepareMachine(*program, run_cfg);
        if (cfg.warm_caches && prev_machine)
            machine->warmStartFrom(*prev_machine);

        // The ramp heats nothing (cores are still power-gated), even
        // when no idle gap preceded this task and the package still
        // carries the previous task's die power.
        package.setDiePower(0.0);
        package.step(run_cfg.activation_ramp);
        policy->beginTask(package);
        RunResult run =
            samplePump(*machine, run_cfg, package, *policy, now);
        run.program_name = program->name();

        now += run.task_time;
        busy += run.task_time;
        tr.finish = now;
        tr.response = tr.finish - task.arrival;
        tr.melt_at_end = package.meltFraction();

        if (tr.sprint_granted && run.sprint_exhausted)
            ++out.sprints_exhausted;
        if (run.hardware_throttled)
            ++out.hardware_throttles;
        out.total_energy += run.dynamic_energy;
        out.total_sprint_time += run.sprint_duration;
        out.total_sprint_energy += run.sprint_energy;
        out.peak_junction = out.tasks.empty()
                                ? run.peak_junction
                                : std::max(out.peak_junction,
                                           run.peak_junction);
        appendTrace(out.junction_trace, run.junction_trace);
        appendTrace(out.power_trace, run.power_trace);
        appendTrace(out.melt_trace, run.melt_trace);

        tr.run = std::move(run);
        out.tasks.push_back(std::move(tr));

        if (cfg.warm_caches) {
            prev_machine = std::move(machine);
            prev_program = std::move(program);
        }
    }

    out.makespan = now;
    out.utilization = now > 0.0 ? busy / now : 0.0;

    if (cfg.tail_rest > 0.0)
        coolPackage(package, out, now, cfg.tail_rest,
                    cfg.idle_trace_samples);

    std::vector<Seconds> responses;
    responses.reserve(out.tasks.size());
    for (const ScenarioTaskResult &tr : out.tasks)
        responses.push_back(tr.response);
    out.p50_response = quantile(responses, 0.50);
    out.p95_response = quantile(responses, 0.95);
    out.sprint_rest_cycles = countMeltRefreezeCycles(out.melt_trace);
    return out;
}

} // namespace csprint
