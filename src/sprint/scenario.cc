#include "sprint/scenario.hh"

#include <algorithm>
#include <cmath>
#include <future>

#include "common/logging.hh"
#include "sprint/checkpoint.hh"

namespace csprint {

const char *
arrivalPatternName(ArrivalPattern pattern)
{
    switch (pattern) {
      case ArrivalPattern::Periodic:
        return "periodic";
      case ArrivalPattern::Bursty:
        return "bursty";
      case ArrivalPattern::Poisson:
        return "poisson";
      case ArrivalPattern::BackToBack:
        return "back-to-back";
    }
    SPRINT_PANIC("unknown arrival pattern");
}

const std::vector<ArrivalPattern> &
allArrivalPatterns()
{
    static const std::vector<ArrivalPattern> patterns = {
        ArrivalPattern::Periodic,
        ArrivalPattern::Bursty,
        ArrivalPattern::Poisson,
        ArrivalPattern::BackToBack,
    };
    return patterns;
}

namespace {

/** The timeline preconditions shared by every scenario entry point. */
void
validateScenarioConfig(const ScenarioConfig &cfg)
{
    SPRINT_ASSERT(cfg.num_tasks >= 1, "scenario needs at least one task");
    SPRINT_ASSERT(cfg.pattern == ArrivalPattern::BackToBack ||
                      cfg.period > 0.0,
                  "arrival pattern needs a positive period");
    SPRINT_ASSERT(cfg.burst_size >= 1, "bursts need at least one task");
    validateSurrogateParams(cfg.surrogate);
    // Admissibility contract (PERF.md, "Surrogate fidelity tier"):
    // warm caches couple a task's service time to its predecessor's
    // cache contents, which a bypassed pump cannot reproduce.
    SPRINT_ASSERT(cfg.surrogate.tier == FidelityTier::CycleAccurate ||
                      !cfg.warm_caches,
                  "surrogate tiers require cold caches");
}

} // namespace

ScenarioTask
nextArrival(const ScenarioConfig &cfg, ArrivalCursor &cursor)
{
    ScenarioTask task;
    task.kernel = cfg.kernel;
    task.size = cfg.size;
    task.seed = cfg.seed + cursor.index;
    const std::uint64_t i = cursor.index++;
    const std::uint64_t burst =
        static_cast<std::uint64_t>(cfg.burst_size);
    switch (cfg.pattern) {
      case ArrivalPattern::Periodic:
        task.arrival = static_cast<double>(i) * cfg.period;
        break;
      case ArrivalPattern::Bursty:
        task.arrival =
            static_cast<double>(i / burst) * cfg.period +
            static_cast<double>(i % burst) * cfg.burst_spacing;
        break;
      case ArrivalPattern::Poisson:
        // First arrival at t = 0; exponential gaps afterwards.
        // log1p keeps precision for small u, where log(1 - u) would
        // round 1 - u first; uniform() is [0, 1) but the u == 1.0
        // boundary is guarded anyway (it would make the gap infinite).
        if (i > 0) {
            double u = cursor.rng.uniform();
            if (u >= 1.0)
                u = std::nextafter(1.0, 0.0);
            cursor.poisson_clock += -std::log1p(-u) * cfg.period;
        }
        task.arrival = cursor.poisson_clock;
        break;
      case ArrivalPattern::BackToBack:
        task.arrival = 0.0;
        break;
    }
    if (cfg.hi_priority_fraction > 0.0) {
        // Per-task class draw: a hash of the task seed rather than the
        // arrival RNG, so the priority stream neither perturbs the
        // existing gap sequence nor needs checkpoint state.
        SplitMix64 h(task.seed ^ 0x7072696f72697479ULL); // "priority"
        const double u =
            static_cast<double>(h.next() >> 11) * 0x1.0p-53;
        task.priority = u < cfg.hi_priority_fraction ? 1 : 0;
    }
    task.deadline =
        task.priority > 0 ? cfg.deadline_hi : cfg.deadline_lo;
    if (cfg.task_tuner)
        cfg.task_tuner(task);
    return task;
}

std::vector<ScenarioTask>
buildArrivals(const ScenarioConfig &cfg)
{
    validateScenarioConfig(cfg);
    std::vector<ScenarioTask> tasks;
    tasks.reserve(static_cast<std::size_t>(cfg.num_tasks));
    ArrivalCursor cursor(cfg);
    for (int i = 0; i < cfg.num_tasks; ++i)
        tasks.push_back(nextArrival(cfg, cursor));
    return tasks;
}

std::function<ParallelProgram(const ScenarioTask &)>
makeWorkloadMixFactory(std::vector<WorkloadMixEntry> mix)
{
    SPRINT_ASSERT(!mix.empty(), "workload mix needs at least one entry");
    double total = 0.0;
    for (const WorkloadMixEntry &entry : mix) {
        SPRINT_ASSERT(entry.weight > 0.0,
                      "workload mix weights must be positive");
        total += entry.weight;
    }
    return [mix = std::move(mix), total](const ScenarioTask &task) {
        // Same idiom as the priority draw: a per-task hash keeps the
        // mix independent of delivery order and checkpoint-free.
        SplitMix64 h(task.seed ^ 0x776f726b6c6f6164ULL); // "workload"
        double u = static_cast<double>(h.next() >> 11) * 0x1.0p-53 *
                   total;
        std::size_t pick = 0;
        for (; pick + 1 < mix.size(); ++pick) {
            u -= mix[pick].weight;
            if (u < 0.0)
                break;
        }
        return buildKernelProgram(mix[pick].kernel, mix[pick].size,
                                  task.seed);
    };
}

MeltCycleCounter::MeltCycleCounter(double rise, double fall)
    : rise_(rise), fall_(fall)
{
    SPRINT_ASSERT(fall < rise, "hysteresis thresholds inverted");
}

void
MeltCycleCounter::add(double melt)
{
    if (!molten_ && melt >= rise_) {
        molten_ = true;
    } else if (molten_ && melt <= fall_) {
        molten_ = false;
        ++cycles_;
    }
}

int
countMeltRefreezeCycles(const TimeSeries &melt, double rise, double fall)
{
    MeltCycleCounter counter(rise, fall);
    for (std::size_t i = 0; i < melt.size(); ++i)
        counter.add(melt.valueAt(i));
    return counter.cycles();
}

void
ScenarioTraceSink::configure(TraceMode mode, std::size_t capacity)
{
    mode_ = mode;
    if (mode_ == TraceMode::DecimatedRing) {
        junction_ring_ = DecimatingTrace(capacity);
        power_ring_ = DecimatingTrace(capacity);
        melt_ring_ = DecimatingTrace(capacity);
    }
}

void
ScenarioTraceSink::reserveMore(std::size_t n)
{
    if (mode_ != TraceMode::Full)
        return;
    junction_.reserve(junction_.size() + n);
    power_.reserve(power_.size() + n);
    melt_.reserve(melt_.size() + n);
}

void
ScenarioTraceSink::add(double t, double junction, double power,
                       double melt)
{
    switch (mode_) {
      case TraceMode::Full:
        junction_.add(t, junction);
        power_.add(t, power);
        melt_.add(t, melt);
        break;
      case TraceMode::DecimatedRing:
        junction_ring_.add(t, junction);
        power_ring_.add(t, power);
        melt_ring_.add(t, melt);
        break;
      case TraceMode::Off:
        break;
    }
}

void
ScenarioTraceSink::append(const TimeSeries &junction,
                          const TimeSeries &power,
                          const TimeSeries &melt)
{
    SPRINT_ASSERT(junction.size() == power.size() &&
                      junction.size() == melt.size(),
                  "per-task traces must be sampled in lockstep");
    switch (mode_) {
      case TraceMode::Full:
        junction_.append(junction);
        power_.append(power);
        melt_.append(melt);
        break;
      case TraceMode::DecimatedRing:
        for (std::size_t i = 0; i < junction.size(); ++i) {
            junction_ring_.add(junction.timeAt(i), junction.valueAt(i));
            power_ring_.add(power.timeAt(i), power.valueAt(i));
            melt_ring_.add(melt.timeAt(i), melt.valueAt(i));
        }
        break;
      case TraceMode::Off:
        break;
    }
}

void
ScenarioTraceSink::exportTo(ScenarioResult &out)
{
    switch (mode_) {
      case TraceMode::Full:
        out.junction_trace = std::move(junction_);
        out.power_trace = std::move(power_);
        out.melt_trace = std::move(melt_);
        break;
      case TraceMode::DecimatedRing:
        out.junction_trace = junction_ring_.take();
        out.power_trace = power_ring_.take();
        out.melt_trace = melt_ring_.take();
        break;
      case TraceMode::Off:
        break;
    }
}

/** The platform with the sprint configuration withheld. */
SprintConfig
consolidatedPlatform(const SprintConfig &platform)
{
    SprintConfig cfg = platform;
    if (cfg.dvfs_boost != 1.0) {
        // Un-wire exactly what the dvfsSprint factory wired (and what
        // samplePump's StopSprint path restores): nominal frequency
        // and the nominal energy model. A non-boost custom energy
        // model is left alone.
        cfg.machine.freq_mult = 1.0;
        cfg.machine.energy = InstructionEnergyModel();
        cfg.dvfs_boost = 1.0;
    }
    cfg.sprint_cores = 1;
    cfg.num_threads = 1;
    cfg.activation_ramp = 0.0;  // nothing to power up
    cfg.machine.num_cores = 1;
    cfg.machine.num_threads = 1;
    return cfg;
}

namespace {

/**
 * Cool the package at zero die power, recording idle trace samples
 * and feeding the streaming aggregates. The idle model selects the
 * exact step() chunks or the quiescent super-stepper.
 */
void
coolPackage(MobilePackageModel &package, ScenarioCheckpoint &ck,
            const ScenarioConfig &cfg, Seconds from, Seconds duration)
{
    package.setDiePower(0.0);
    const int n = std::max(1, cfg.idle_trace_samples);
    const Seconds h = duration / n;
    const bool quiescent = cfg.idle_model == IdleModel::Quiescent;
    ck.traces.reserveMore(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        if (quiescent)
            SprintPolicy::advanceIdle(package, h, cfg.idle_tolerance);
        else
            package.step(h);
        const Seconds t = from + static_cast<double>(i + 1) * h;
        const double melt = package.meltFraction();
        ck.traces.add(t, package.junctionTemp(), 0.0, melt);
        ck.melt_cycles.add(melt);
        ck.peak_melt = std::max(ck.peak_melt, melt);
    }
}

/** Nearest-rank quantile of a sorted sample set. */
Seconds
sortedQuantile(const std::vector<Seconds> &sorted, double q)
{
    const std::size_t n = sorted.size();
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    return sorted[std::min(n - 1, rank > 0 ? rank - 1 : 0)];
}

} // namespace

ScenarioCheckpoint
beginScenario(const ScenarioConfig &cfg)
{
    validateScenarioConfig(cfg);
    ScenarioCheckpoint ck;
    ck.arrivals = ArrivalCursor(cfg);
    ck.surrogate.seed(cfg.seed);
    ck.traces.configure(cfg.trace_mode, cfg.trace_capacity);
    if (cfg.keep_task_results)
        ck.tasks.reserve(static_cast<std::size_t>(cfg.num_tasks));

    MobilePackageModel package(cfg.platform.package);
    package.reset();
    ck.thermal = package.saveState();
    return ck;
}

namespace {

/**
 * The next undelivered arrival, generated lazily into the checkpoint
 * (the one-task lookahead is what lets the engine spot an arrival
 * landing mid-task); null once the timeline is exhausted.
 */
const ScenarioTask *
peekArrival(const ScenarioConfig &cfg, ScenarioCheckpoint &ck)
{
    if (!ck.have_peek) {
        if (ck.arrivals.index >=
            static_cast<std::uint64_t>(cfg.num_tasks))
            return nullptr;
        ck.peek = nextArrival(cfg, ck.arrivals);
        ck.have_peek = true;
    }
    return &ck.peek;
}

/** Consume the peeked arrival. */
ScenarioTask
takePeek(ScenarioCheckpoint &ck)
{
    ck.have_peek = false;
    return ck.peek;
}

/** Policy view of a not-yet-started task. */
TaskSnapshot
snapshotOfTask(const ScenarioTask &task)
{
    TaskSnapshot s;
    s.arrival = task.arrival;
    s.deadline = task.deadline > 0.0 ? task.arrival + task.deadline
                                     : kNoDeadline;
    s.priority = task.priority;
    return s;
}

/** Policy view of a (possibly in-flight) execution. */
TaskSnapshot
snapshotOf(const ScenarioTaskExecution &ex)
{
    TaskSnapshot s = snapshotOfTask(ex.task);
    s.started = ex.started;
    s.sprint_granted = ex.sprint_granted;
    if (ex.machine)
        s.service = ex.pump.ramp_time + ex.machine->simTime();
    return s;
}

std::unique_ptr<ScenarioTaskExecution>
makeExecution(const ScenarioTask &task)
{
    auto ex = std::make_unique<ScenarioTaskExecution>();
    ex->task = task;
    return ex;
}

/**
 * The engine's ready queue: insertion-ordered slots (a null marks a
 * dispatched entry) plus, for policies with a declared static
 * dispatch order, a binary heap over per-task dispatch keys so a
 * large simultaneous arrival set dispatches in O(log n) instead of
 * materializing a TaskSnapshot per queued task on every dispatch.
 * The heap realizes exactly the generic scan's pick: the key orders
 * by (priority desc, absolute deadline asc, arrival asc) with the
 * insertion sequence as the final tie-break — the stable-first
 * semantics of the preemptive policies' pickUrgent — and Fifo is the
 * insertion sequence alone. Custom policies keep the generic
 * pickNext path over the live entries in insertion order.
 */
class ReadyQueue
{
  public:
    ReadyQueue(DispatchOrder order,
               std::vector<std::unique_ptr<ScenarioTaskExecution>> from)
        : order_(order)
    {
        slots_.reserve(from.size());
        for (auto &ex : from)
            push(std::move(ex));
    }

    bool empty() const { return live_ == 0; }
    std::size_t size() const { return live_; }

    void
    push(std::unique_ptr<ScenarioTaskExecution> ex)
    {
        if (order_ == DispatchOrder::Urgency) {
            const TaskSnapshot s = snapshotOfTask(ex->task);
            heap_.push_back(HeapKey{s.deadline, s.arrival, s.priority,
                                    slots_.size()});
            std::push_heap(heap_.begin(), heap_.end(), dispatchesAfter);
        }
        slots_.push_back(std::move(ex));
        ++live_;
    }

    /** The entry popOrdered() would dispatch (Fifo/Urgency only). */
    const ScenarioTaskExecution *
    peekOrdered() const
    {
        if (live_ == 0 || order_ == DispatchOrder::Custom)
            return nullptr;
        return slots_[order_ == DispatchOrder::Urgency
                          ? heap_.front().slot
                          : firstLive()]
            .get();
    }

    /** Dispatch under the declared static order (Fifo or Urgency). */
    std::unique_ptr<ScenarioTaskExecution>
    popOrdered()
    {
        std::size_t slot;
        if (order_ == DispatchOrder::Urgency) {
            std::pop_heap(heap_.begin(), heap_.end(), dispatchesAfter);
            slot = heap_.back().slot;
            heap_.pop_back();
        } else {
            slot = firstLive();
            head_ = slot + 1;
        }
        --live_;
        return std::move(slots_[slot]);
    }

    /** Live entries, insertion order (the generic pickNext view). */
    template <typename Fn>
    void
    forEachLive(Fn &&fn) const
    {
        for (const auto &ex : slots_) {
            if (ex)
                fn(*ex);
        }
    }

    /** Dispatch the @p index-th live entry in insertion order. */
    std::unique_ptr<ScenarioTaskExecution>
    popAt(std::size_t index)
    {
        SPRINT_ASSERT(index < live_, "pickNext index out of range");
        for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
            if (!slots_[slot])
                continue;
            if (index-- == 0) {
                --live_;
                return std::move(slots_[slot]);
            }
        }
        SPRINT_PANIC("ready queue live count out of sync");
    }

    /** Compact into checkpoint form: live entries, insertion order. */
    std::vector<std::unique_ptr<ScenarioTaskExecution>>
    takeAll()
    {
        std::vector<std::unique_ptr<ScenarioTaskExecution>> out;
        out.reserve(live_);
        for (auto &ex : slots_) {
            if (ex)
                out.push_back(std::move(ex));
        }
        slots_.clear();
        heap_.clear();
        live_ = 0;
        head_ = 0;
        return out;
    }

  private:
    struct HeapKey
    {
        Seconds deadline;
        Seconds arrival;
        int priority;
        std::size_t slot; ///< insertion sequence (unique)
    };

    /**
     * Strict "a dispatches after b": std::push_heap keeps the
     * maximum at the front, so the front is the earliest dispatch.
     * Slots are unique, making the order total — the heap's pick is
     * deterministic and equals the stable scan's.
     */
    static bool
    dispatchesAfter(const HeapKey &a, const HeapKey &b)
    {
        if (a.priority != b.priority)
            return a.priority < b.priority;
        if (a.deadline != b.deadline)
            return a.deadline > b.deadline;
        if (a.arrival != b.arrival)
            return a.arrival > b.arrival;
        return a.slot > b.slot;
    }

    /** First live slot (Fifo head, skipping dispatched entries). */
    std::size_t
    firstLive() const
    {
        std::size_t slot = head_;
        while (!slots_[slot])
            ++slot;
        return slot;
    }

    DispatchOrder order_;
    std::vector<std::unique_ptr<ScenarioTaskExecution>> slots_;
    std::vector<HeapKey> heap_; ///< Urgency only
    std::size_t live_ = 0;
    mutable std::size_t head_ = 0; ///< Fifo scan resume point
};

/** The serial program build the engine has always performed. */
ParallelProgram
buildProgram(const ScenarioConfig &cfg, const ScenarioTask &task)
{
    return cfg.program_factory
               ? cfg.program_factory(task)
               : buildKernelProgram(task.kernel, task.size, task.seed);
}

/** Tasks match on every field the program build can observe. */
bool
sameTask(const ScenarioTask &a, const ScenarioTask &b)
{
    return a.arrival == b.arrival && a.kernel == b.kernel &&
           a.size == b.size && a.seed == b.seed &&
           a.priority == b.priority && a.deadline == b.deadline;
}

/**
 * One program build in flight on a helper thread
 * (ScenarioConfig::pipeline_build): the predicted next task plus the
 * future of its build. The factory is pure, so a prebuilt program for
 * a matching task is the serial build; a misprediction is drained and
 * discarded.
 */
class ProgramPrebuilder
{
  public:
    explicit ProgramPrebuilder(const ScenarioConfig &cfg) : cfg(cfg) {}

    /** Drain any in-flight build before the futures dangle. */
    ~ProgramPrebuilder() { cancel(); }

    /** Start building @p task's program unless it is already queued. */
    void
    start(const ScenarioTask &task)
    {
        if (pending && sameTask(task_for, task))
            return;
        cancel();
        task_for = task;
        building = std::async(std::launch::async,
                              [this] { return buildProgram(cfg, task_for); });
        pending = true;
    }

    /**
     * The prebuilt program when it was built for exactly @p task
     * (blocking on the helper thread if the build is still running);
     * null on a misprediction or when nothing was prebuilt.
     */
    std::unique_ptr<ParallelProgram>
    take(const ScenarioTask &task)
    {
        if (!pending)
            return nullptr;
        pending = false;
        if (!sameTask(task_for, task)) {
            building.get(); // drain the mispredicted build
            return nullptr;
        }
        return std::make_unique<ParallelProgram>(building.get());
    }

  private:
    void
    cancel()
    {
        if (pending) {
            building.get();
            pending = false;
        }
    }

    const ScenarioConfig &cfg;
    ScenarioTask task_for;
    std::future<ParallelProgram> building;
    bool pending = false;
};

/**
 * Execute one dispatched task from its calibrated class prediction
 * instead of a machine pump (the surrogate fast path): pay the
 * activation ramp exactly as the exact path does, advance the package
 * through the predicted piecewise-constant heat profile — the
 * above-TDP sprint segment first, then the sustainable tail carrying
 * the remaining energy — and fold the predicted service and energy
 * into the same streaming aggregates, deadline accounting, and policy
 * feedback a pumped task feeds. The program and machine are never
 * built.
 */
void
runSurrogateTask(const ScenarioConfig &cfg, ScenarioCheckpoint &ck,
                 MobilePackageModel &package, SprintPolicy &policy,
                 ScenarioTaskExecution &ex,
                 const SurrogatePrediction &pred)
{
    // The (re-)activation ramp heats nothing (cores still gated).
    const Seconds ramp = ex.run_cfg.activation_ramp;
    package.setDiePower(0.0);
    package.step(ramp);
    ck.now += ramp;
    ck.busy += ramp;

    Celsius peak = package.junctionTemp();

    // The pump steps heat into the package in whole sample quanta
    // only: the final partial quantum of a run never fires the
    // machine's sample hook, so its time and energy never touch the
    // thermal model. The profile therefore spans the learned heat
    // envelope (heat_time/heat_energy), not the full service time.
    const Seconds service = pred.service;
    const Seconds heat_t = std::min(pred.heat_time, service);
    const Joules heat_e = std::min(pred.heat_energy, pred.energy);
    const Seconds sprint_t = std::min(pred.sprint_time, heat_t);
    const Seconds tail_t = heat_t - sprint_t;
    const Joules sprint_e = std::min(pred.sprint_energy, heat_e);
    const Joules tail_e = heat_e - sprint_e;

    struct Segment
    {
        Seconds dt;
        Watts power;
    };
    Segment segs[2];
    int nsegs = 0;
    if (sprint_t > 0.0)
        segs[nsegs++] = Segment{sprint_t, sprint_e / sprint_t};
    if (tail_t > 0.0)
        segs[nsegs++] = Segment{tail_t, tail_e / tail_t};

    Seconds t = ck.now;
    for (int s = 0; s < nsegs; ++s) {
        // Chunks split proportionally across the segments, at least
        // one each, so a short sprint still lands a trace sample.
        const int chunks = std::max(
            1, static_cast<int>(std::lround(
                   cfg.surrogate.profile_samples * segs[s].dt /
                   heat_t)));
        const Seconds h = segs[s].dt / chunks;
        ck.traces.reserveMore(static_cast<std::size_t>(chunks));
        for (int i = 0; i < chunks; ++i) {
            // Pre-advance state recorded at the post-increment time:
            // the exact pump's sample convention.
            t += h;
            const double melt = package.meltFraction();
            ck.traces.add(t, package.junctionTemp(), segs[s].power,
                          melt);
            ck.melt_cycles.add(melt);
            ck.peak_melt = std::max(ck.peak_melt, melt);
            package.setDiePower(segs[s].power);
            package.step(h);
            peak = std::max(peak, package.junctionTemp());
        }
    }
    // The unsampled residual advances the clock but — exactly like
    // the exact pump — never steps the package.
    t += service - heat_t;
    ck.busy += t - ck.now;
    ck.now = t;

    // Fold, mirroring the exact completion path field for field.
    if (ex.sprint_granted && pred.sprint_exhausted)
        ++ck.sprints_exhausted;
    if (pred.hardware_throttled)
        ++ck.hardware_throttles;
    ck.total_energy += pred.energy;
    ck.total_sprint_time += sprint_t;
    ck.total_sprint_energy += sprint_e;
    ck.peak_junction = ck.tasks_completed == 0
                           ? peak
                           : std::max(ck.peak_junction, peak);
    const Seconds response = ck.now - ex.task.arrival;
    ck.p50.add(response);
    ck.p95.add(response);
    const bool met = ex.task.deadline <= 0.0 ||
                     ck.now <= ex.task.arrival + ex.task.deadline;
    if (ex.task.deadline > 0.0)
        ++(met ? ck.deadlines_met : ck.deadlines_missed);
    policy.onTaskComplete(snapshotOf(ex), ramp + service);
    ++ck.tasks_completed;

    if (cfg.keep_task_results) {
        ScenarioTaskResult tr;
        tr.arrival = ex.task.arrival;
        tr.start = ex.first_start;
        tr.finish = ck.now;
        tr.response = response;
        tr.sprint_granted = ex.sprint_granted;
        tr.melt_at_start = ex.melt_at_start;
        tr.melt_at_end = package.meltFraction();
        tr.priority = ex.task.priority;
        tr.deadline = ex.task.deadline;
        tr.deadline_met = met;
        tr.preemptions = ex.preemptions;
        tr.run.program_name = "surrogate";
        tr.run.sprint_cores = ex.run_cfg.sprint_cores;
        tr.run.num_threads = ex.run_cfg.num_threads;
        tr.run.dvfs_boost = ex.run_cfg.dvfs_boost;
        tr.run.task_time = ramp + service;
        tr.run.dynamic_energy = pred.energy;
        tr.run.peak_junction = peak;
        tr.run.final_melt_fraction = package.meltFraction();
        tr.run.sprint_exhausted = pred.sprint_exhausted;
        tr.run.hardware_throttled = pred.hardware_throttled;
        tr.run.sprint_duration = sprint_t;
        tr.run.sprint_energy = sprint_e;
        tr.run.avg_power =
            service > 0.0 ? pred.energy / service : 0.0;
        ck.tasks.push_back(std::move(tr));
    }
}

} // namespace

bool
advanceScenario(const ScenarioConfig &cfg, ScenarioCheckpoint &ck,
                std::uint64_t max_tasks)
{
    if (ck.done || max_tasks == 0)
        return ck.done;

    const std::unique_ptr<SprintPolicy> policy =
        cfg.policy_factory ? cfg.policy_factory()
                           : makeSprintPolicy(cfg.policy);
    if (!ck.policy_state.empty())
        policy->restoreState(ck.policy_state);
    const SprintConfig denied_cfg = consolidatedPlatform(cfg.platform);
    // Queue-only policies keep the classic lazy flow: one arrival
    // materialized per dispatch, no mid-task delivery — so saturating
    // million-task timelines never build a queue (see
    // SprintPolicy::preemptive).
    const bool preemptive = policy->preemptive();
    // Admissibility contract (PERF.md, "Surrogate fidelity tier"):
    // preemption cuts tasks at sample boundaries a bypassed pump does
    // not have, and a suspended task's remaining work is not a class
    // property. This also guarantees every dispatched task completes
    // inside this advance call — no checkpoint boundary can cut an
    // audit in half.
    const bool surrogate_on =
        cfg.surrogate.tier != FidelityTier::CycleAccurate;
    SPRINT_ASSERT(!surrogate_on || !preemptive,
                  "surrogate tiers require a non-preemptive policy");

    // The shard's package is rebuilt from the snapshot; step() output
    // depends only on the restored state and the (deterministically
    // rebuilt) topology, so resuming is bit-exact.
    MobilePackageModel package(cfg.platform.package);
    package.restoreState(ck.thermal);

    // Warm-restart chain: the previous task's machine (and the
    // program it references) stay alive until the next machine has
    // adopted their cache state.
    std::unique_ptr<ParallelProgram> prev_program =
        std::move(ck.warm_program);
    std::unique_ptr<Machine> prev_machine = std::move(ck.warm_machine);

    // Scheduler state: arrivals delivered but not finished (value
    // entries or suspended live machines), plus the task on the
    // machine right now. The queue keeps entries in arrival order so
    // the generic pickNext view reproduces the classic engine; a
    // declared Fifo/Urgency order dispatches from the heap instead of
    // materializing a snapshot per entry (bit-identical pick).
    const DispatchOrder order = cfg.generic_dispatch
                                    ? DispatchOrder::Custom
                                    : policy->dispatchOrder();
    ReadyQueue ready(order, std::move(ck.ready));
    std::unique_ptr<ScenarioTaskExecution> current;
    ProgramPrebuilder prebuild(cfg);

    for (std::uint64_t completed = 0; completed < max_tasks;) {
        if (!current) {
            if (ready.empty()) {
                const ScenarioTask *next = peekArrival(cfg, ck);
                if (!next)
                    break;  // timeline exhausted, nothing in flight
                if (next->arrival > ck.now) {
                    coolPackage(package, ck, cfg, ck.now,
                                next->arrival - ck.now);
                    ck.now = next->arrival;
                }
                ready.push(makeExecution(takePeek(ck)));
            }
            // A preemptive policy ranks the whole eligible set:
            // deliver everything due by now, including arrivals that
            // landed in the finished predecessor's final sub-quantum
            // tail (after its last sample, before its completion),
            // which the pump observer never saw.
            while (preemptive) {
                const ScenarioTask *due = peekArrival(cfg, ck);
                if (!due || due->arrival > ck.now)
                    break;
                ready.push(makeExecution(takePeek(ck)));
            }
            if (order != DispatchOrder::Custom || ready.size() == 1) {
                current = ready.popOrdered();
            } else {
                std::vector<TaskSnapshot> snaps;
                snaps.reserve(ready.size());
                ready.forEachLive([&](const ScenarioTaskExecution &ex) {
                    snaps.push_back(snapshotOf(ex));
                });
                current = ready.popAt(
                    policy->pickNext(package, ck.now, snaps));
            }

            if (!current->started) {
                current->first_start = ck.now;
                current->melt_at_start = package.meltFraction();
                current->sprint_granted = policy->wantSprint(package);
                ++(current->sprint_granted ? ck.sprints_granted
                                           : ck.sprints_denied);
                current->run_cfg = current->sprint_granted
                                       ? cfg.platform
                                       : denied_cfg;
                if (surrogate_on) {
                    const std::uint32_t key = TaskSurrogate::classKey(
                        current->task.kernel, current->task.size,
                        current->sprint_granted);
                    switch (ck.surrogate.route(key, cfg.surrogate)) {
                      case TaskSurrogate::Route::Surrogate:
                        // Fast path: no program, no machine, no pump.
                        current->started = true;
                        runSurrogateTask(cfg, ck, package, *policy,
                                         *current,
                                         ck.surrogate.predict(key));
                        ++completed;
                        current.reset();
                        continue;
                      case TaskSurrogate::Route::Audit:
                        // Grade this prediction against the pump's
                        // ground truth at completion.
                        current->audit = true;
                        current->audit_prediction =
                            ck.surrogate.predict(key);
                        break;
                      case TaskSurrogate::Route::Exact:
                        break;
                    }
                }
                current->program = prebuild.take(current->task);
                if (!current->program) {
                    current->program = std::make_unique<ParallelProgram>(
                        buildProgram(cfg, current->task));
                } else if (cfg.verify_pipeline_build) {
                    const ParallelProgram serial =
                        buildProgram(cfg, current->task);
                    SPRINT_ASSERT(
                        programDigest(*current->program) ==
                            programDigest(serial),
                        "prebuilt program diverged from serial build");
                }
                current->machine =
                    prepareMachine(*current->program, current->run_cfg);
                if (cfg.warm_caches && prev_machine) {
                    current->machine->warmStartFrom(*prev_machine);
                    // warmStartFrom moves the predecessor's caches
                    // out, so the chain is consumed: a preemptor
                    // dispatched before the next completion must
                    // start cold, not adopt the gutted remains.
                    prev_machine.reset();
                    prev_program.reset();
                }
                current->started = true;
            }
            // Overlap the predicted next dispatch's program build
            // with this task's pump. Only a fresh task at the front
            // of a declared order (or, with an empty queue, the
            // peeked arrival) is predictable; anything else —
            // including a misprediction caused by a higher-urgency
            // mid-pump arrival — falls back to the serial build.
            if (cfg.pipeline_build &&
                max_tasks - completed >= 2) {
                const ScenarioTaskExecution *up = ready.peekOrdered();
                if (up) {
                    if (!up->started)
                        prebuild.start(up->task);
                } else if (ready.empty()) {
                    if (const ScenarioTask *n = peekArrival(cfg, ck))
                        prebuild.start(*n);
                }
            }
            // The (re-)activation ramp heats nothing (cores are still
            // power-gated), even when no idle gap preceded this
            // dispatch and the package still carries the previous
            // task's die power. A resumed task pays it again: its
            // cores were surrendered to the preemptor.
            package.setDiePower(0.0);
            package.step(current->run_cfg.activation_ramp);
            ck.now += current->run_cfg.activation_ramp;
            ck.busy += current->run_cfg.activation_ramp;
            current->pump.ramp_time += current->run_cfg.activation_ramp;
            current->pump.elapsed = ck.now;
            current->pump.peak_junction =
                current->pump.junction_trace.empty()
                    ? package.junctionTemp()
                    : std::max(current->pump.peak_junction,
                               package.junctionTemp());
            // A resumed task re-arms the policy like a fresh task:
            // budgets re-anchor to the live thermal state.
            policy->beginTask(package);
        }

        // Pump until the task completes or the policy preempts it at
        // a sample boundary for a mid-task arrival.
        bool preempt_req = false;
        const PumpObserver observer = [&](Seconds t, Celsius junction,
                                          Watts power,
                                          double melt) -> bool {
            ck.traces.add(t, junction, power, melt);
            ck.melt_cycles.add(melt);
            if (melt > ck.peak_melt)
                ck.peak_melt = melt;
            while (preemptive) {
                const ScenarioTask *due = peekArrival(cfg, ck);
                if (!due || due->arrival > t)
                    break;
                const ScenarioTask task = takePeek(ck);
                switch (policy->onArrival(package, t,
                                          snapshotOf(*current),
                                          snapshotOfTask(task))) {
                  case ArrivalDecision::Drop:
                    ++ck.tasks_dropped;
                    if (task.deadline > 0.0)
                        ++ck.deadlines_missed;
                    break;
                  case ArrivalDecision::Preempt:
                    preempt_req = true;
                    ready.push(makeExecution(task));
                    break;
                  case ArrivalDecision::Queue:
                    ready.push(makeExecution(task));
                    break;
                }
            }
            return preempt_req;
        };

        const Seconds sim_mark = current->machine->simTime();
        pumpTaskSlice(*current->machine, current->run_cfg, package,
                      *policy, current->pump, observer);
        const Seconds ran = current->machine->simTime() - sim_mark;
        ck.now += ran;
        ck.busy += ran;

        if (!current->machine->finished()) {
            // Preempted: park the live execution back in the queue.
            ++current->preemptions;
            ++ck.preemptions;
            ready.push(std::move(current));
            continue;
        }

        // Task complete: fold it into the aggregates.
        const TaskSnapshot done_snap = snapshotOf(*current);
        const Seconds ramp_paid = current->pump.ramp_time;
        RunResult run = finalizePump(std::move(current->pump),
                                     *current->machine,
                                     current->run_cfg, package);
        run.program_name = current->program->name();

        if (surrogate_on) {
            // Every exact pump calibrates its class — audits grade
            // the prediction first, then feed the truth like any
            // other observation (demoted classes keep learning too).
            const std::uint32_t key = TaskSurrogate::classKey(
                current->task.kernel, current->task.size,
                current->sprint_granted);
            SurrogateObservation ob;
            ob.service = run.task_time - ramp_paid;
            ob.energy = run.dynamic_energy;
            ob.sprint_time = run.sprint_duration;
            ob.sprint_energy = run.sprint_energy;
            ob.heat_time = run.sampled_time;
            ob.heat_energy = run.sampled_energy;
            ob.sprint_exhausted = run.sprint_exhausted;
            ob.hardware_throttled = run.hardware_throttled;
            if (current->audit)
                ck.surrogate.finishAudit(key, current->audit_prediction,
                                         ob, cfg.surrogate);
            ck.surrogate.observeExact(key, ob);
        }

        if (current->sprint_granted && run.sprint_exhausted)
            ++ck.sprints_exhausted;
        if (run.hardware_throttled)
            ++ck.hardware_throttles;
        ck.total_energy += run.dynamic_energy;
        ck.total_sprint_time += run.sprint_duration;
        ck.total_sprint_energy += run.sprint_energy;
        ck.peak_junction = ck.tasks_completed == 0
                               ? run.peak_junction
                               : std::max(ck.peak_junction,
                                          run.peak_junction);
        const Seconds response = ck.now - current->task.arrival;
        ck.p50.add(response);
        ck.p95.add(response);
        const bool met =
            current->task.deadline <= 0.0 ||
            ck.now <= current->task.arrival + current->task.deadline;
        if (current->task.deadline > 0.0)
            ++(met ? ck.deadlines_met : ck.deadlines_missed);
        policy->onTaskComplete(done_snap, run.task_time);
        ++ck.tasks_completed;
        ++completed;

        if (cfg.keep_task_results) {
            ScenarioTaskResult tr;
            tr.arrival = current->task.arrival;
            tr.start = current->first_start;
            tr.finish = ck.now;
            tr.response = response;
            tr.sprint_granted = current->sprint_granted;
            tr.melt_at_start = current->melt_at_start;
            tr.melt_at_end = package.meltFraction();
            tr.priority = current->task.priority;
            tr.deadline = current->task.deadline;
            tr.deadline_met = met;
            tr.preemptions = current->preemptions;
            tr.run = std::move(run);
            ck.tasks.push_back(std::move(tr));
        }
        if (cfg.warm_caches) {
            prev_machine = std::move(current->machine);
            prev_program = std::move(current->program);
        }
        current.reset();
    }

    SPRINT_ASSERT(!current, "engine left a task on the machine");
    ck.thermal = package.saveState();
    ck.policy_state = policy->saveState();
    ck.ready = ready.takeAll();
    if (cfg.warm_caches) {
        ck.warm_machine = std::move(prev_machine);
        ck.warm_program = std::move(prev_program);
    }
    ck.done = !ck.have_peek && ck.ready.empty() &&
              ck.arrivals.index >=
                  static_cast<std::uint64_t>(cfg.num_tasks);
    if (cfg.validate_checkpoints)
        validateCheckpoint(cfg, ck);
    return ck.done;
}

ScenarioResult
finishScenario(const ScenarioConfig &cfg, ScenarioCheckpoint &&ck)
{
    SPRINT_ASSERT(ck.done, "finishScenario before the timeline finished");

    ScenarioResult out;
    out.makespan = ck.now;
    out.utilization = ck.now > 0.0 ? ck.busy / ck.now : 0.0;

    if (cfg.tail_rest > 0.0) {
        MobilePackageModel package(cfg.platform.package);
        package.restoreState(ck.thermal);
        coolPackage(package, ck, cfg, ck.now, cfg.tail_rest);
        ck.thermal = package.saveState();
    }

    out.tasks_completed = ck.tasks_completed;
    out.sprints_granted = ck.sprints_granted;
    out.sprints_denied = ck.sprints_denied;
    out.sprints_exhausted = ck.sprints_exhausted;
    out.hardware_throttles = ck.hardware_throttles;
    out.preemptions = ck.preemptions;
    out.tasks_dropped = ck.tasks_dropped;
    out.deadlines_met = ck.deadlines_met;
    out.deadlines_missed = ck.deadlines_missed;
    out.peak_junction = ck.peak_junction;
    out.total_energy = ck.total_energy;
    out.total_sprint_time = ck.total_sprint_time;
    out.total_sprint_energy = ck.total_sprint_energy;
    out.peak_melt_fraction = ck.peak_melt;
    out.sprint_rest_cycles = ck.melt_cycles.cycles();
    out.surrogate_tasks = ck.surrogate.surrogateTasks();
    out.audit_tasks = ck.surrogate.auditTasks();
    out.surrogate_demotions = ck.surrogate.demotions();

    if (cfg.keep_task_results) {
        // Exact nearest-rank quantiles: one sort serves both ranks.
        std::vector<Seconds> responses;
        responses.reserve(ck.tasks.size());
        for (const ScenarioTaskResult &tr : ck.tasks)
            responses.push_back(tr.response);
        std::sort(responses.begin(), responses.end());
        if (!responses.empty()) {
            out.p50_response = sortedQuantile(responses, 0.50);
            out.p95_response = sortedQuantile(responses, 0.95);
        }
    } else {
        out.p50_response = ck.p50.value();
        out.p95_response = ck.p95.value();
    }

    ck.traces.exportTo(out);
    out.tasks = std::move(ck.tasks);
    return out;
}

ScenarioResult
runScenario(const ScenarioConfig &cfg)
{
    ScenarioCheckpoint ck = beginScenario(cfg);
    // One advance with the full task budget normally finishes the
    // timeline; dropped arrivals can leave the budget unspent, so
    // iterate until the engine reports completion.
    while (!advanceScenario(cfg, ck,
                            static_cast<std::uint64_t>(cfg.num_tasks))) {
    }
    return finishScenario(cfg, std::move(ck));
}

ScenarioResult
runScenarioSharded(const ScenarioConfig &cfg, std::uint64_t shard_tasks)
{
    SPRINT_ASSERT(shard_tasks >= 1, "shards need at least one task");
    ScenarioCheckpoint ck = beginScenario(cfg);
    while (!advanceScenario(cfg, ck, shard_tasks)) {
    }
    return finishScenario(cfg, std::move(ck));
}

} // namespace csprint
