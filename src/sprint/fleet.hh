/**
 * @file
 * Fleet-scale serving driver: sample a device population from a
 * FleetSpec (PCM provisioning, ambient, core count, workload mix, and
 * sprint policy drawn from seeded distributions), shard the devices
 * across worker processes, and reap per-device results over a
 * length-prefixed pipe protocol that reuses the portable checkpoint
 * byte format (sprint/checkpoint.hh) for all state in flight.
 *
 * Two transports run the same fleet:
 *
 *  - runFleetInProcess() drives every device through the thread
 *    supervisor (runSupervisedScenarioBatch) — no processes, same
 *    shard ranges, same aggregate fold/merge order.
 *
 *  - runFleetMultiProcess() fork/execs one csprint-fleet-worker
 *    binary per shard range. Each worker persists crash-safe
 *    checkpoints into a shared CheckpointStore directory, streams
 *    heartbeat/result frames to the parent over a pipe, and is
 *    supervised by a parent-side watchdog: a worker that dies (or is
 *    SIGKILLed, stalls, or corrupts its pipe) is reaped and respawned
 *    with bounded exponential backoff, resuming every device in its
 *    range from the newest valid persisted checkpoint. A range that
 *    exhausts its retries is degraded, not dropped: devices whose
 *    final checkpoints were already received still count, the rest
 *    are tallied as degraded devices.
 *
 * Determinism gates (tests/fleet_fault_test.cc, bench/fleet_report.cc):
 * the multi-process run equals the in-process run bit-for-bit on
 * every shared aggregate field and per-device checkpoint digest, and
 * a run SIGKILLed at a random checkpoint equals the uninterrupted run
 * bit-for-bit after recovery — both under a rotating seed.
 *
 * Aggregates are mergeable: each worker folds its range into a
 * FleetAggregates (counters, maxima, and streaming P² response
 * quantiles with a deterministic merge — common/stats.hh), the parent
 * merges ranges in range order, so both transports reduce in the
 * exact same order and the bit-parity gate is meaningful.
 */

#ifndef CSPRINT_SPRINT_FLEET_HH
#define CSPRINT_SPRINT_FLEET_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "sprint/scenario.hh"
#include "sprint/supervisor.hh"

namespace csprint {

/**
 * One device class of the fleet: the knob ranges a device of this
 * class draws its concrete configuration from. Scalar knobs are taken
 * verbatim; the [lo, hi] pairs are sampled uniformly per device.
 */
struct FleetDeviceClass
{
    /** Relative share of the population this class receives. */
    double weight = 1.0;

    int cores = 16;                 ///< sprint width (parallelSprint)
    Grams pcm_mass_lo = 0.0015;     ///< PCM provisioning range [g]
    Grams pcm_mass_hi = 0.0015;
    Celsius ambient_lo = 25.0;      ///< ambient temperature range
    Celsius ambient_hi = 25.0;

    SprintPolicyKind policy = SprintPolicyKind::GreedyActivity;
    Seconds pacing_period = 2.5e-3; ///< DutyCycle pacing budget
    Seconds service_prior = 0.0;    ///< Qos/ModelPredictive prior

    ArrivalPattern pattern = ArrivalPattern::Periodic;
    int num_tasks = 4;
    Seconds period = 2.5e-3;
    int burst_size = 2;
    Seconds burst_spacing = 0.0;

    /** Weighted workload mix; empty uses kernel/size below. */
    std::vector<WorkloadMixEntry> mix;
    KernelId kernel = KernelId::Sobel;
    InputSize size = InputSize::A;
    bool warm_caches = false;

    double hi_priority_fraction = 0.0;
    Seconds deadline_hi = 0.0;
    Seconds deadline_lo = 0.0;
    Seconds tail_rest = 0.0;
};

/** A seeded device population. */
struct FleetSpec
{
    std::uint64_t seed = 42;
    int num_devices = 64;
    std::vector<FleetDeviceClass> classes;
    double time_scale = kDefaultTimeScale;
    /**
     * Junction temperature above which a device counts as a thermal
     * violation in the fleet aggregates; 0 (the default) uses each
     * device's own package t_junction_max.
     */
    Celsius thermal_limit = 0.0;
};

/** Throw std::invalid_argument when @p spec is not runnable. */
void validateFleetSpec(const FleetSpec &spec);

/**
 * The concrete ScenarioConfig of device @p device of @p spec: class
 * choice and every sampled knob derive from (spec.seed, device) alone
 * through a SplitMix64-decorated per-device stream, so any process
 * can rebuild any device's configuration without coordination — this
 * is what lets a respawned worker resume a device it never saw.
 * keep_task_results is forced on (the fleet quantiles fold per-task
 * response times).
 */
ScenarioConfig fleetDeviceConfig(const FleetSpec &spec, int device);

/**
 * The thermal-violation threshold of device @p device: the spec's
 * thermal_limit when positive, else @p cfg's package t_junction_max.
 */
Celsius fleetDeviceThermalLimit(const FleetSpec &spec,
                                const ScenarioConfig &cfg);

/**
 * CRC32 digest over a canonical dump of @p spec's value fields; seals
 * the aggregate blobs so a worker's results can never be folded into
 * the wrong fleet.
 */
std::uint32_t fleetSpecDigest(const FleetSpec &spec);

/**
 * Contiguous device ranges [begin, end) for @p num_workers workers
 * over @p num_devices devices, balanced to within one device, in
 * device order. Workers are clamped to the device count so no range
 * is empty. Both transports use these exact ranges, so the range
 * merge order — and therefore the merged P² state — is identical.
 */
std::vector<std::pair<int, int>> fleetShardRanges(int num_devices,
                                                  int num_workers);

/**
 * Mergeable fleet-level aggregates: exact counters and maxima plus
 * streaming P² response quantiles. fold* on one range, merge ranges
 * in range order; counters and maxima merge exactly, the quantile
 * merge is deterministic (equal inputs and order give bit-equal
 * state) and order-insensitive within an estimator tolerance.
 */
struct FleetAggregates
{
    std::uint64_t devices = 0;          ///< devices folded (any fate)
    std::uint64_t degraded_devices = 0; ///< retries exhausted, no result
    std::uint64_t tasks_completed = 0;
    std::uint64_t tasks_dropped = 0;
    std::uint64_t deadlines_met = 0;
    std::uint64_t deadlines_missed = 0;
    std::uint64_t sprints_granted = 0;
    std::uint64_t sprints_denied = 0;
    std::uint64_t hardware_throttles = 0;
    std::uint64_t melt_cycles = 0;        ///< sprint/rest cycles summed
    std::uint64_t thermal_violations = 0; ///< devices over their limit

    Celsius peak_junction = 0.0;   ///< hottest junction fleet-wide
    double peak_melt = 0.0;        ///< largest PCM melt fraction seen
    Joules total_energy = 0.0;
    Seconds total_sprint_time = 0.0;
    Joules total_sprint_energy = 0.0;

    P2Quantile response_p50{0.50};
    P2Quantile response_p95{0.95};

    /** Fold one completed device in (violation judged against @p limit). */
    void foldDevice(const ScenarioResult &r, Celsius limit);

    /** Count one device that exhausted its retries. */
    void foldDegradedDevice();

    /** Fold another range's aggregates in (deterministic). */
    void merge(const FleetAggregates &other);

    /** Deadline SLO: met / (met + missed); 1 when no deadlines. */
    double deadlineSlo() const;

    /** Devices over their thermal limit per device folded. */
    double thermalViolationRate() const;
};

/** Seal @p agg for the wire (digest = fleetSpecDigest of the fleet). */
std::vector<std::uint8_t>
serializeFleetAggregates(const FleetAggregates &agg,
                         std::uint32_t spec_digest);

/** Inverse of serializeFleetAggregates; throws CheckpointError. */
FleetAggregates
deserializeFleetAggregates(const std::vector<std::uint8_t> &blob,
                           std::uint32_t spec_digest);

/** Knobs of a fleet run (either transport). */
struct FleetOptions
{
    /** Worker processes / shard ranges (clamped to the device count). */
    int num_workers = 2;

    /** Persist a checkpoint after every this many completed tasks. */
    std::uint64_t checkpoint_every_tasks = 4;

    /** Respawns allowed per worker before its range degrades. */
    int max_retries = 3;

    /** Respawn r sleeps backoff_initial * 2^(r-1) seconds (0 = none). */
    double backoff_initial = 0.0;

    /** Seconds without a frame before the parent SIGKILLs a worker. */
    double watchdog_deadline = 30.0;

    /** CheckpointStore directory (required; shared by all workers). */
    std::string store_dir;

    /**
     * Worker binary path. Empty resolves CSPRINT_FLEET_WORKER from
     * the environment, then csprint-fleet-worker next to the running
     * executable (the build tree layout).
     */
    std::string worker_path;

    /** validateCheckpoint() every checkpoint before persisting. */
    bool paranoia = false;

    /** Retain per-device ScenarioResults in the FleetResult. */
    bool keep_device_results = true;
};

/** What became of one device of a fleet run. */
struct FleetDeviceOutcome
{
    /** Final checkpoint received (directly or via the store). */
    bool completed = false;

    /** CRC32 of the final persisted checkpoint blob; 0 when absent. */
    std::uint32_t checkpoint_digest = 0;

    /** Final result; meaningful when completed && keep_device_results. */
    ScenarioResult result;
};

/** Per-worker (per shard range) supervision tallies. */
struct FleetWorkerStats
{
    int range_begin = 0;
    int range_end = 0;
    int respawns = 0;    ///< process respawns (mp) / shard retries (ip)
    bool degraded = false;
    std::string last_error; ///< last failure reason, for diagnosis
};

struct FleetResult
{
    FleetAggregates aggregates;
    std::vector<FleetDeviceOutcome> devices;
    std::vector<FleetWorkerStats> workers;

    /** True when no worker range is degraded. */
    bool allOk() const;
};

/**
 * Run @p spec's fleet inside this process through the thread
 * supervisor: identical shard ranges, fold order, and merge order as
 * the multi-process transport, with per-device checkpoint digests
 * read back from the store. @p plan may only contain thread-transport
 * fault kinds (process kinds are rejected with Kind::Unsupported).
 */
FleetResult runFleetInProcess(const FleetSpec &spec,
                              const FleetOptions &opts,
                              const FaultPlan &plan = {});

/**
 * Run @p spec's fleet across worker processes (see the file comment
 * for the supervision semantics). @p plan's faults — including the
 * process-level kinds — fire one-shot inside the workers at their
 * named checkpoints; fired faults survive respawns (the parent passes
 * the fired set back on the respawn command line). Throws
 * CheckpointError with Kind::Io when the worker binary cannot be
 * found or spawned.
 */
FleetResult runFleetMultiProcess(const FleetSpec &spec,
                                 const FleetOptions &opts,
                                 const FaultPlan &plan = {});

/**
 * Entry point of the csprint-fleet-worker binary (tools/
 * fleet_worker.cc is just main() calling this): parse --spec/--store/
 * --begin/--end/--fd/--attempt/--fired, run the device range, stream
 * frames on the given descriptor. Exits the process directly on
 * injected faults; returns the process exit code otherwise.
 */
int fleetWorkerMain(int argc, char **argv);

/**
 * The worker binary the parent will exec when FleetOptions::
 * worker_path is empty: $CSPRINT_FLEET_WORKER, else
 * csprint-fleet-worker beside /proc/self/exe, else bare
 * "csprint-fleet-worker" (PATH).
 */
std::string defaultFleetWorkerPath();

// --- Wire/spec-file serialization (exposed for the worker + tests) --

/**
 * Serialize (spec, plan, worker-relevant options) into a sealed blob
 * — the spec file the parent writes into the store directory and
 * every worker reads back, so one byte stream is the single source
 * of truth for what the fleet runs.
 */
std::vector<std::uint8_t> serializeFleetSpec(const FleetSpec &spec,
                                             const FaultPlan &plan,
                                             const FleetOptions &opts);

/** Inverse of serializeFleetSpec; throws CheckpointError. */
void deserializeFleetSpec(const std::vector<std::uint8_t> &blob,
                          FleetSpec &spec, FaultPlan &plan,
                          FleetOptions &opts);

} // namespace csprint

#endif // CSPRINT_SPRINT_FLEET_HH
