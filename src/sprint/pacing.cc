#include "sprint/pacing.hh"

#include <algorithm>
#include <atomic>

#include "common/logging.hh"

namespace csprint {

namespace {

/**
 * Clamp an oversized integration step to its window: budget and
 * over-temperature checks only happen at step boundaries, so a step
 * coarser than the window it integrates over would jump past them.
 * The first clamp per call site is reported, further ones are silent.
 */
Seconds
clampedStep(Seconds step, Seconds window, const char *where,
            std::atomic<bool> &warned)
{
    if (window > 0.0 && step > window) {
        if (!warned.exchange(true)) {
            SPRINT_WARN("pacing step ", step, " s exceeds the ", where,
                        " window of ", window, " s; clamping (further "
                        "clamps are silent)");
        }
        return window;
    }
    return step;
}

} // namespace

double
sustainableDutyCycle(const MobilePackageModel &package,
                     Watts sprint_power)
{
    SPRINT_ASSERT(sprint_power > 0.0, "bad sprint power");
    return std::min(1.0, package.sustainableTdp() / sprint_power);
}

Joules
budgetAfterRest(MobilePackageModel &package, Seconds rest, Seconds step)
{
    SPRINT_ASSERT(step > 0.0, "bad step");
    static std::atomic<bool> warned{false};
    step = clampedStep(step, rest, "rest", warned);
    package.setDiePower(0.0);
    Seconds t = 0.0;
    while (t < rest) {
        const Seconds h = std::min(step, rest - t);
        package.step(h);
        t += h;
    }
    return package.sprintEnergyBudget();
}

Seconds
timeToBudgetFraction(MobilePackageModel &package, double fraction,
                     Seconds limit, Seconds step)
{
    SPRINT_ASSERT(fraction > 0.0 && fraction <= 1.0, "bad fraction");
    SPRINT_ASSERT(step > 0.0, "bad step");
    static std::atomic<bool> warned{false};
    step = clampedStep(step, limit, "recovery", warned);
    // Cold-start budget for reference.
    MobilePackageModel cold(package.params());
    const Joules target = fraction * cold.sprintEnergyBudget();

    package.setDiePower(0.0);
    Seconds t = 0.0;
    while (t < limit) {
        if (package.sprintEnergyBudget() >= target)
            return t;
        const Seconds h = std::min(step, limit - t);
        package.step(h);
        t += h;
    }
    return limit;
}

std::vector<SprintWindow>
runSprintTrain(MobilePackageModel &package, int count,
               Watts sprint_power, Seconds want, Seconds interval,
               Seconds step)
{
    SPRINT_ASSERT(count >= 1 && want > 0.0 && interval >= want,
                  "bad sprint train shape");
    SPRINT_ASSERT(step > 0.0, "bad step");
    static std::atomic<bool> warned{false};
    step = clampedStep(step, want, "sprint", warned);
    MobilePackageModel cold(package.params());
    const Joules full_budget = cold.sprintEnergyBudget();
    const Watts tdp = package.sustainableTdp();

    std::vector<SprintWindow> out;
    Seconds now = 0.0;
    for (int i = 0; i < count; ++i) {
        SprintWindow win;
        win.start = now;
        win.budget_fraction =
            full_budget > 0.0
                ? package.sprintEnergyBudget() / full_budget
                : 0.0;

        // Sprint until the live budget (tracked against the package
        // thermal state) runs out or the request is satisfied.
        Joules budget = package.sprintEnergyBudget();
        Seconds sprinted = 0.0;
        package.setDiePower(sprint_power);
        while (sprinted < want && budget > 0.0 &&
               !package.overTempLimit()) {
            const Seconds h = std::min(step, want - sprinted);
            package.step(h);
            sprinted += h;
            budget -= (sprint_power - tdp) * h;
        }
        win.duration = sprinted;
        win.energy = sprint_power * sprinted;
        out.push_back(win);

        // Rest until the next request.
        package.setDiePower(0.0);
        const Seconds rest = interval - sprinted;
        Seconds t = 0.0;
        while (t < rest) {
            const Seconds h = std::min(10.0 * step, rest - t);
            package.step(h);
            t += h;
        }
        now += interval;
    }
    return out;
}

} // namespace csprint
