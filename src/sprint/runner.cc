#include "sprint/runner.hh"

#include <algorithm>
#include <memory>

#include "common/gang.hh"
#include "common/logging.hh"

namespace csprint {

WorkerGang *
threadDispatchGang(int lanes)
{
    thread_local std::unique_ptr<WorkerGang> gang;
    thread_local int gang_lanes = 0;
    if (lanes < 2)
        return nullptr;
    if (!gang || gang_lanes != lanes) {
        gang = std::make_unique<WorkerGang>(lanes);
        gang_lanes = lanes;
    }
    return gang.get();
}

RunResult
runExperiment(const ExperimentRun &run)
{
    ExperimentRun r = run;
    if (r.spec.dispatch_threads > 1 && !r.spec.dispatch_gang)
        r.spec.dispatch_gang =
            threadDispatchGang(r.spec.dispatch_threads);
    switch (r.mode) {
      case ExperimentMode::Baseline:
        return runBaselineExperiment(r.spec);
      case ExperimentMode::ParallelSprint:
        return runParallelSprintExperiment(r.spec);
      case ExperimentMode::DvfsSprint:
        return runDvfsSprintExperiment(r.spec);
    }
    SPRINT_PANIC("unknown experiment mode");
}

ExperimentRunner::ExperimentRunner(int workers)
{
    if (workers <= 0) {
        workers = static_cast<int>(std::thread::hardware_concurrency());
        workers = std::max(1, workers);
    }
    threads.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
        threads.emplace_back([this] { workerLoop(); });
}

ExperimentRunner::~ExperimentRunner()
{
    wait();
    {
        std::lock_guard<std::mutex> guard(mutex);
        stopping = true;
    }
    signal.notify_all();
    for (auto &t : threads)
        t.join();
}

void
ExperimentRunner::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> guard(mutex);
        SPRINT_ASSERT(!stopping, "submit on a stopped runner");
        queue.push_back(std::move(job));
        ++in_flight;
    }
    signal.notify_all();
}

void
ExperimentRunner::submit(std::function<void()> job)
{
    enqueue(std::move(job));
}

void
ExperimentRunner::runOne(std::unique_lock<std::mutex> &lock)
{
    std::function<void()> job = std::move(queue.front());
    queue.pop_front();
    lock.unlock();
    try {
        job();
    } catch (...) {
        // map() wraps its jobs and never lets an exception reach here;
        // a raw submit() job that throws would otherwise leave
        // in_flight stuck and hang every waiter. Fail loudly instead.
        SPRINT_PANIC("ExperimentRunner job threw an exception; "
                     "use map() for throwing jobs");
    }
    lock.lock();
    --in_flight;
    signal.notify_all();
}

void
ExperimentRunner::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
        signal.wait(lock,
                    [this] { return stopping || !queue.empty(); });
        if (queue.empty())
            return; // stopping, nothing left to run
        runOne(lock);
    }
}

void
ExperimentRunner::helpUntilZero(const std::size_t &counter)
{
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
        if (counter == 0)
            return;
        if (!queue.empty()) {
            runOne(lock);
            continue;
        }
        // Jobs of this batch are running elsewhere: sleep until a
        // completion (or new work to help with) arrives.
        signal.wait(lock, [this, &counter] {
            return counter == 0 || !queue.empty();
        });
    }
}

void
ExperimentRunner::wait()
{
    helpUntilZero(in_flight);
}

std::vector<RunResult>
ExperimentRunner::runBatch(const std::vector<ExperimentRun> &batch)
{
    std::vector<std::function<RunResult()>> jobs;
    jobs.reserve(batch.size());
    for (const ExperimentRun &run : batch)
        jobs.emplace_back([&run] { return runExperiment(run); });
    return map(jobs);
}

std::vector<ScenarioResult>
ExperimentRunner::runScenarioBatch(const std::vector<ScenarioConfig> &batch)
{
    std::vector<std::function<ScenarioResult()>> jobs;
    jobs.reserve(batch.size());
    for (const ScenarioConfig &cfg : batch)
        jobs.emplace_back([&cfg] { return runScenario(cfg); });
    return map(jobs);
}

std::vector<Checked<ScenarioResult>>
ExperimentRunner::runScenarioBatchChecked(
    const std::vector<ScenarioConfig> &batch)
{
    std::vector<std::function<ScenarioResult()>> jobs;
    jobs.reserve(batch.size());
    for (const ScenarioConfig &cfg : batch)
        jobs.emplace_back([&cfg] { return runScenario(cfg); });
    return mapChecked(jobs);
}

} // namespace csprint
