#include "sprint/supervisor.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <thread>

#include "common/rng.hh"
#include "sprint/checkpoint.hh"

namespace csprint {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::CrashAtCheckpoint:
        return "crash-at-checkpoint";
    case FaultKind::BitFlip:
        return "bit-flip";
    case FaultKind::Truncate:
        return "truncate";
    case FaultKind::WorkerException:
        return "worker-exception";
    case FaultKind::Stall:
        return "stall";
    }
    return "unknown";
}

FaultPlan
FaultPlan::randomized(std::uint64_t seed, int num_shards,
                      std::uint64_t max_seq)
{
    FaultPlan plan;
    Rng rng(seed ^ 0xfa017ull);
    if (max_seq == 0)
        max_seq = 1;
    for (int shard = 0; shard < num_shards; ++shard) {
        FaultSpec f;
        f.shard = shard;
        f.kind = static_cast<FaultKind>(rng.next() % 5);
        f.at_seq = 1 + rng.next() % max_seq;
        plan.faults.push_back(f);
    }
    return plan;
}

bool
SupervisedBatchResult::allOk() const
{
    for (const ShardOutcome &s : shards) {
        if (s.degraded)
            return false;
    }
    return true;
}

namespace {

using Clock = std::chrono::steady_clock;

/** Flip one bit in the middle of @p path (injected bit rot). */
void
flipBitInFile(const std::string &path)
{
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    if (!f)
        return;
    f.seekg(0, std::ios::end);
    const std::streamoff len = f.tellg();
    if (len <= 0)
        return;
    const std::streamoff at = len / 2;
    f.seekg(at);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    f.seekp(at);
    f.write(&byte, 1);
}

/** Cut @p path down to half its length (injected torn write). */
void
truncateFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return;
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
}

/** Shared between one shard's worker thread and the watchdog. */
struct WorkerControl
{
    std::atomic<Clock::rep> heartbeat{Clock::now().time_since_epoch().count()};
    std::atomic<bool> cancel{false};

    void
    beat()
    {
        heartbeat.store(Clock::now().time_since_epoch().count(),
                        std::memory_order_relaxed);
        if (cancel.load(std::memory_order_relaxed))
            throw WatchdogTimeout("worker cancelled by the watchdog");
    }

    double
    secondsSinceBeat() const
    {
        const Clock::duration d =
            Clock::now().time_since_epoch() -
            Clock::duration(heartbeat.load(std::memory_order_relaxed));
        return std::chrono::duration<double>(d).count();
    }
};

/**
 * One worker attempt: recover or begin, advance in checkpoint-sized
 * slices, persist each boundary, fire any due faults. Returns the
 * finished result. Throws on injected faults, watchdog cancellation,
 * or genuine engine errors.
 */
ScenarioResult
workerAttempt(const ScenarioConfig &cfg, int shard,
              const SupervisorOptions &opts, const FaultPlan &plan,
              std::vector<bool> &fired, CheckpointStore &store,
              WorkerControl &control, ShardOutcome &outcome)
{
    // Recover from the newest checkpoint that deserializes cleanly;
    // corrupt or truncated candidates are rejected by their CRC /
    // structure checks and the retained predecessor is used instead.
    ScenarioCheckpoint ck;
    std::uint64_t seq = 0;
    bool recovered = false;
    for (CheckpointStore::Candidate &cand : store.loadCandidates(shard)) {
        try {
            ck = deserializeCheckpoint(cfg, cand.blob);
            seq = cand.seq;
            recovered = true;
            break;
        } catch (const CheckpointError &) {
            // fall through to the next (older) candidate
        }
    }
    if (recovered)
        ++outcome.recoveries;
    else
        ck = beginScenario(cfg);

    // Monotonicity gates: a resumed trajectory must only move
    // forward. A violation means the serializer or the engine lost
    // state, and retrying would silently produce wrong numbers.
    double prev_now = ck.now;
    std::uint64_t prev_completed = ck.tasks_completed;
    double prev_energy = ck.total_energy;

    bool done = ck.done;
    while (!done) {
        control.beat();
        done = advanceScenario(cfg, ck, opts.checkpoint_every_tasks);
        control.beat();

        if (ck.now < prev_now - 1e-12 ||
            ck.tasks_completed < prev_completed ||
            ck.total_energy < prev_energy - 1e-12)
            throw CheckpointError(
                CheckpointError::Kind::Invariant,
                "shard " + std::to_string(shard) +
                    " moved backwards across a checkpoint boundary");
        prev_now = ck.now;
        prev_completed = ck.tasks_completed;
        prev_energy = ck.total_energy;

        if (opts.paranoia)
            validateCheckpoint(cfg, ck);
        std::vector<std::uint8_t> blob = serializeCheckpoint(cfg, ck);
        ++seq;

        // An injected fault due at this checkpoint fires exactly
        // once across all attempts of the batch.
        const FaultSpec *fault = nullptr;
        std::size_t fault_idx = 0;
        for (std::size_t i = 0; i < plan.faults.size(); ++i) {
            const FaultSpec &f = plan.faults[i];
            if (!fired[i] && f.shard == shard && f.at_seq == seq) {
                fault = &f;
                fault_idx = i;
                break;
            }
        }

        if (fault && fault->kind == FaultKind::CrashAtCheckpoint) {
            fired[fault_idx] = true;
            throw SimulatedCrash("injected crash before persisting "
                                 "checkpoint " +
                                 std::to_string(seq));
        }

        store.save(shard, seq, blob);
        ++outcome.checkpoints_persisted;

        if (fault) {
            fired[fault_idx] = true;
            switch (fault->kind) {
            case FaultKind::BitFlip:
                flipBitInFile(store.checkpointPath(shard, seq));
                throw SimulatedCrash("injected crash after bit-flip "
                                     "of checkpoint " +
                                     std::to_string(seq));
            case FaultKind::Truncate:
                truncateFile(store.checkpointPath(shard, seq));
                throw SimulatedCrash("injected crash after "
                                     "truncation of checkpoint " +
                                     std::to_string(seq));
            case FaultKind::WorkerException:
                throw std::runtime_error("injected worker exception "
                                         "at checkpoint " +
                                         std::to_string(seq));
            case FaultKind::Stall:
                // Stop beating and wait for the watchdog; beat()
                // turns the cancel flag into WatchdogTimeout.
                for (;;) {
                    if (control.cancel.load(std::memory_order_relaxed))
                        throw WatchdogTimeout(
                            "worker cancelled by the watchdog "
                            "during an injected stall");
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
                }
            case FaultKind::CrashAtCheckpoint:
                break; // handled above
            }
        }
    }
    return finishScenario(cfg, std::move(ck));
}

} // namespace

SupervisedBatchResult
runSupervisedScenarioBatch(const std::vector<ScenarioConfig> &shards,
                           const SupervisorOptions &opts,
                           const FaultPlan &plan)
{
    if (opts.store_dir.empty())
        throw CheckpointError(CheckpointError::Kind::Io,
                              "supervisor requires a checkpoint "
                              "store directory");
    CheckpointStore store(opts.store_dir);
    std::vector<bool> fired(plan.faults.size(), false);

    SupervisedBatchResult batch;
    batch.shards.resize(shards.size());
    for (std::size_t shard = 0; shard < shards.size(); ++shard) {
        const ScenarioConfig &cfg = shards[shard];
        ShardOutcome &outcome = batch.shards[shard];

        for (int attempt = 0; attempt <= opts.max_retries; ++attempt) {
            if (attempt > 0) {
                ++outcome.retries;
                if (opts.backoff_initial > 0.0) {
                    const double s = opts.backoff_initial *
                                     std::ldexp(1.0, attempt - 1);
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(s));
                }
            }

            WorkerControl control;
            std::exception_ptr failure;
            std::atomic<bool> finished{false};
            bool ok = false;
            std::thread worker([&]() {
                try {
                    outcome.result = workerAttempt(
                        cfg, static_cast<int>(shard), opts, plan,
                        fired, store, control, outcome);
                    ok = true;
                } catch (...) {
                    failure = std::current_exception();
                }
                finished.store(true, std::memory_order_release);
            });

            // The watchdog: poll the heartbeat until the worker
            // finishes; cancel it once the beat goes stale.
            // Cancellation is cooperative — the worker observes the
            // flag at slice boundaries and inside injected stalls —
            // so join() always returns.
            while (!finished.load(std::memory_order_acquire)) {
                if (control.secondsSinceBeat() > opts.watchdog_deadline)
                    control.cancel.store(true,
                                         std::memory_order_relaxed);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
            worker.join();

            if (ok)
                break;
            outcome.error = failure;
            if (attempt == opts.max_retries)
                outcome.degraded = true;
        }
    }
    return batch;
}

} // namespace csprint
