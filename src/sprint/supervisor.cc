#include "sprint/supervisor.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <thread>

#include "common/rng.hh"
#include "sprint/checkpoint.hh"

namespace csprint {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::CrashAtCheckpoint:
        return "crash-at-checkpoint";
    case FaultKind::BitFlip:
        return "bit-flip";
    case FaultKind::Truncate:
        return "truncate";
    case FaultKind::WorkerException:
        return "worker-exception";
    case FaultKind::Stall:
        return "stall";
    case FaultKind::KillWorker:
        return "kill-worker";
    case FaultKind::StallWorker:
        return "stall-worker";
    case FaultKind::CorruptPipe:
        return "corrupt-pipe";
    }
    return "unknown";
}

bool
faultKindIsProcessLevel(FaultKind kind)
{
    return kind == FaultKind::KillWorker ||
           kind == FaultKind::StallWorker ||
           kind == FaultKind::CorruptPipe;
}

FaultPlan
FaultPlan::randomized(std::uint64_t seed, int num_shards,
                      std::uint64_t max_seq)
{
    FaultPlan plan;
    Rng rng(seed ^ 0xfa017ull);
    if (max_seq == 0)
        max_seq = 1;
    for (int shard = 0; shard < num_shards; ++shard) {
        FaultSpec f;
        f.shard = shard;
        f.kind = static_cast<FaultKind>(rng.next() % 5);
        f.at_seq = 1 + rng.next() % max_seq;
        plan.faults.push_back(f);
    }
    return plan;
}

FaultPlan
FaultPlan::randomizedProcess(std::uint64_t seed, int num_shards,
                             std::uint64_t max_seq)
{
    // Every kind the process transport recovers from, Stall excluded
    // (StallWorker covers it without the per-shard watchdog wait).
    static const FaultKind kinds[] = {
        FaultKind::CrashAtCheckpoint, FaultKind::BitFlip,
        FaultKind::Truncate,          FaultKind::WorkerException,
        FaultKind::KillWorker,        FaultKind::StallWorker,
        FaultKind::CorruptPipe};
    FaultPlan plan;
    Rng rng(seed ^ 0xf1ee7ull);
    if (max_seq == 0)
        max_seq = 1;
    for (int shard = 0; shard < num_shards; ++shard) {
        FaultSpec f;
        f.shard = shard;
        f.kind = kinds[rng.next() % (sizeof(kinds) / sizeof(kinds[0]))];
        f.at_seq = 1 + rng.next() % max_seq;
        plan.faults.push_back(f);
    }
    return plan;
}

double
retryBackoffSeconds(double backoff_initial, int attempt)
{
    if (backoff_initial <= 0.0 || attempt < 1)
        return 0.0;
    return backoff_initial * std::ldexp(1.0, attempt - 1);
}

bool
SupervisedBatchResult::allOk() const
{
    for (const ShardOutcome &s : shards) {
        if (s.degraded)
            return false;
    }
    return true;
}

void
faultFlipBitInFile(const std::string &path)
{
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    if (!f)
        return;
    f.seekg(0, std::ios::end);
    const std::streamoff len = f.tellg();
    if (len <= 0)
        return;
    const std::streamoff at = len / 2;
    f.seekg(at);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    f.seekp(at);
    f.write(&byte, 1);
}

void
faultTruncateFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return;
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
}

ScenarioResult
runShardToCompletion(const ScenarioConfig &cfg, int shard,
                     CheckpointStore &store,
                     std::uint64_t checkpoint_every_tasks,
                     bool paranoia, const ShardBeatFn &beat,
                     const ShardPersistHook &beforePersist,
                     const ShardPersistHook &afterPersist,
                     ShardProgress &progress,
                     std::vector<std::uint8_t> *final_blob)
{
    // Recover from the newest checkpoint that deserializes cleanly;
    // corrupt or truncated candidates are rejected by their CRC /
    // structure checks and the retained predecessor is used instead.
    ScenarioCheckpoint ck;
    std::uint64_t seq = 0;
    bool recovered = false;
    for (CheckpointStore::Candidate &cand : store.loadCandidates(shard)) {
        try {
            ck = deserializeCheckpoint(cfg, cand.blob);
            seq = cand.seq;
            recovered = true;
            break;
        } catch (const CheckpointError &) {
            // fall through to the next (older) candidate
        }
    }
    if (recovered)
        ++progress.recoveries;
    else
        ck = beginScenario(cfg);

    // Monotonicity gates: a resumed trajectory must only move
    // forward. A violation means the serializer or the engine lost
    // state, and retrying would silently produce wrong numbers.
    double prev_now = ck.now;
    std::uint64_t prev_completed = ck.tasks_completed;
    double prev_energy = ck.total_energy;

    // A shard recovered at its final checkpoint (ck.done) still
    // re-persists nothing below; its final blob is the recovered
    // candidate's bytes re-serialized — bit-identical, since the
    // round-trip is (serialize ∘ deserialize)-exact.
    std::vector<std::uint8_t> last_blob;
    if (ck.done && final_blob)
        last_blob = serializeCheckpoint(cfg, ck);

    bool done = ck.done;
    while (!done) {
        if (beat)
            beat();
        done = advanceScenario(cfg, ck, checkpoint_every_tasks);
        if (beat)
            beat();

        if (ck.now < prev_now - 1e-12 ||
            ck.tasks_completed < prev_completed ||
            ck.total_energy < prev_energy - 1e-12)
            throw CheckpointError(
                CheckpointError::Kind::Invariant,
                "shard " + std::to_string(shard) +
                    " moved backwards across a checkpoint boundary");
        prev_now = ck.now;
        prev_completed = ck.tasks_completed;
        prev_energy = ck.total_energy;

        if (paranoia)
            validateCheckpoint(cfg, ck);
        std::vector<std::uint8_t> blob = serializeCheckpoint(cfg, ck);
        ++seq;

        if (beforePersist)
            beforePersist(seq);
        store.save(shard, seq, blob);
        ++progress.checkpoints_persisted;
        if (final_blob)
            last_blob = std::move(blob);
        if (afterPersist)
            afterPersist(seq);
    }
    if (final_blob)
        *final_blob = std::move(last_blob);
    return finishScenario(cfg, std::move(ck));
}

namespace {

using Clock = std::chrono::steady_clock;

/** Shared between one shard's worker thread and the watchdog. */
struct WorkerControl
{
    std::atomic<Clock::rep> heartbeat{Clock::now().time_since_epoch().count()};
    std::atomic<bool> cancel{false};

    void
    beat()
    {
        heartbeat.store(Clock::now().time_since_epoch().count(),
                        std::memory_order_relaxed);
        if (cancel.load(std::memory_order_relaxed))
            throw WatchdogTimeout("worker cancelled by the watchdog");
    }

    double
    secondsSinceBeat() const
    {
        const Clock::duration d =
            Clock::now().time_since_epoch() -
            Clock::duration(heartbeat.load(std::memory_order_relaxed));
        return std::chrono::duration<double>(d).count();
    }
};

/**
 * One worker attempt: the shared shard core with this transport's
 * heartbeat and thread-level fault injection wired into the hooks.
 * Returns the finished result. Throws on injected faults, watchdog
 * cancellation, or genuine engine errors.
 */
ScenarioResult
workerAttempt(const ScenarioConfig &cfg, int shard,
              const SupervisorOptions &opts, const FaultPlan &plan,
              std::vector<bool> &fired, CheckpointStore &store,
              WorkerControl &control, ShardOutcome &outcome)
{
    // An injected fault due at this checkpoint fires exactly once
    // across all attempts of the batch.
    auto dueFault = [&](std::uint64_t seq) -> std::size_t {
        for (std::size_t i = 0; i < plan.faults.size(); ++i) {
            const FaultSpec &f = plan.faults[i];
            if (!fired[i] && f.shard == shard && f.at_seq == seq)
                return i;
        }
        return plan.faults.size();
    };

    auto beforePersist = [&](std::uint64_t seq) {
        const std::size_t i = dueFault(seq);
        if (i == plan.faults.size() ||
            plan.faults[i].kind != FaultKind::CrashAtCheckpoint)
            return;
        fired[i] = true;
        throw SimulatedCrash("injected crash before persisting "
                             "checkpoint " +
                             std::to_string(seq));
    };

    auto afterPersist = [&](std::uint64_t seq) {
        const std::size_t i = dueFault(seq);
        if (i == plan.faults.size())
            return;
        const FaultKind kind = plan.faults[i].kind;
        if (kind == FaultKind::CrashAtCheckpoint)
            return; // handled before the persist
        fired[i] = true;
        switch (kind) {
        case FaultKind::BitFlip:
            faultFlipBitInFile(store.checkpointPath(shard, seq));
            throw SimulatedCrash("injected crash after bit-flip "
                                 "of checkpoint " +
                                 std::to_string(seq));
        case FaultKind::Truncate:
            faultTruncateFile(store.checkpointPath(shard, seq));
            throw SimulatedCrash("injected crash after "
                                 "truncation of checkpoint " +
                                 std::to_string(seq));
        case FaultKind::WorkerException:
            throw std::runtime_error("injected worker exception "
                                     "at checkpoint " +
                                     std::to_string(seq));
        case FaultKind::Stall:
            // Stop beating and wait for the watchdog; beat()
            // turns the cancel flag into WatchdogTimeout.
            for (;;) {
                if (control.cancel.load(std::memory_order_relaxed))
                    throw WatchdogTimeout(
                        "worker cancelled by the watchdog "
                        "during an injected stall");
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
        default:
            break; // process-level kinds rejected at batch entry
        }
    };

    // Fold the attempt's tallies into the outcome whether it finishes
    // or dies mid-run — a crashed attempt's persisted checkpoints and
    // recovery still happened.
    ShardProgress progress;
    auto fold = [&]() {
        outcome.checkpoints_persisted += progress.checkpoints_persisted;
        outcome.recoveries += progress.recoveries;
    };
    try {
        ScenarioResult result = runShardToCompletion(
            cfg, shard, store, opts.checkpoint_every_tasks,
            opts.paranoia, [&control]() { control.beat(); },
            beforePersist, afterPersist, progress);
        fold();
        return result;
    } catch (...) {
        fold();
        throw;
    }
}

} // namespace

SupervisedBatchResult
runSupervisedScenarioBatch(const std::vector<ScenarioConfig> &shards,
                           const SupervisorOptions &opts,
                           const FaultPlan &plan)
{
    if (opts.store_dir.empty())
        throw CheckpointError(CheckpointError::Kind::Io,
                              "supervisor requires a checkpoint "
                              "store directory");
    for (const FaultSpec &f : plan.faults) {
        if (faultKindIsProcessLevel(f.kind))
            throw CheckpointError(
                CheckpointError::Kind::Unsupported,
                std::string("fault kind ") + faultKindName(f.kind) +
                    " needs the process transport "
                    "(runFleetMultiProcess), not the thread "
                    "supervisor");
    }
    CheckpointStore store(opts.store_dir);
    std::vector<bool> fired(plan.faults.size(), false);

    SupervisedBatchResult batch;
    batch.shards.resize(shards.size());
    for (std::size_t shard = 0; shard < shards.size(); ++shard) {
        const ScenarioConfig &cfg = shards[shard];
        ShardOutcome &outcome = batch.shards[shard];

        for (int attempt = 0; attempt <= opts.max_retries; ++attempt) {
            if (attempt > 0) {
                ++outcome.retries;
                const double s =
                    retryBackoffSeconds(opts.backoff_initial, attempt);
                if (s > 0.0)
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(s));
            }

            WorkerControl control;
            std::exception_ptr failure;
            std::atomic<bool> finished{false};
            bool ok = false;
            std::thread worker([&]() {
                try {
                    outcome.result = workerAttempt(
                        cfg, static_cast<int>(shard), opts, plan,
                        fired, store, control, outcome);
                    ok = true;
                } catch (...) {
                    failure = std::current_exception();
                }
                finished.store(true, std::memory_order_release);
            });

            // The watchdog: poll the heartbeat until the worker
            // finishes; cancel it once the beat goes stale.
            // Cancellation is cooperative — the worker observes the
            // flag at slice boundaries and inside injected stalls —
            // so join() always returns.
            while (!finished.load(std::memory_order_acquire)) {
                if (control.secondsSinceBeat() > opts.watchdog_deadline)
                    control.cancel.store(true,
                                         std::memory_order_relaxed);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
            worker.join();

            if (ok)
                break;
            outcome.error = failure;
            if (attempt == opts.max_retries)
                outcome.degraded = true;
        }
    }
    return batch;
}

} // namespace csprint
