/**
 * @file
 * The multi-sprint Scenario engine: a timeline of task arrivals run
 * through one persistent MobilePackageModel, so PCM melt and refreeze
 * state carries across sprints and rests — the paper's sprint-and-
 * rest discipline (Section 3) and governor pacing (Section 7) driven
 * by the real machine+thermal loop instead of the analytical pacing
 * module.
 *
 * Tasks are served in arrival order by a single chip: a task starts
 * at max(its arrival, the previous task's finish); between tasks the
 * package cools at zero die power. At each task arrival the
 * SprintPolicy decides whether the sprint configuration is granted
 * (full width / boost) or the task runs consolidated on one core; the
 * machine is re-invoked per task (prepareMachine + samplePump),
 * optionally warm-starting L1/L2 contents from its predecessor
 * (Machine::warmStartFrom).
 *
 * A single back-to-back task under the greedy policy is exactly
 * runSprint(): same package lifecycle, same policy arithmetic, same
 * sample pump — bench/scenario_report.cc gates that equivalence
 * bit-for-bit on the fig07 configurations.
 */

#ifndef CSPRINT_SPRINT_SCENARIO_HH
#define CSPRINT_SPRINT_SCENARIO_HH

#include <cstdint>
#include <vector>

#include "sprint/policy.hh"
#include "sprint/simulation.hh"
#include "workloads/workload.hh"

namespace csprint {

/** How task arrivals are laid out on the timeline. */
enum class ArrivalPattern
{
    Periodic,   ///< one task every `period`
    Bursty,     ///< bursts of `burst_size` tasks every `period`
    Poisson,    ///< exponential inter-arrivals with mean `period`
    BackToBack, ///< all tasks queued at t = 0 (saturating train)
};

/** Stable lowercase name for reports and bench JSON keys. */
const char *arrivalPatternName(ArrivalPattern pattern);

/** All arrival patterns, in report order. */
const std::vector<ArrivalPattern> &allArrivalPatterns();

/** One entry of the arrival timeline. */
struct ScenarioTask
{
    Seconds arrival = 0.0;
    KernelId kernel = KernelId::Sobel;
    InputSize size = InputSize::A;
    std::uint64_t seed = 42;
};

/** A complete scenario description. */
struct ScenarioConfig
{
    /**
     * The sprint-mode platform (cores, package, machine template).
     * Its `governor` member is unused here — the policy below carries
     * the governor tuning.
     */
    SprintConfig platform;
    SprintPolicyParams policy;

    ArrivalPattern pattern = ArrivalPattern::Periodic;
    int num_tasks = 4;
    /**
     * Timeline scale, in the same time-scaled seconds as the
     * platform package: the inter-arrival period (Periodic), the
     * burst-to-burst period (Bursty), or the mean inter-arrival
     * (Poisson). Ignored by BackToBack.
     */
    Seconds period = 2.5e-3;
    int burst_size = 2;          ///< Bursty: tasks per burst
    Seconds burst_spacing = 0.0; ///< Bursty: gap inside a burst

    KernelId kernel = KernelId::Sobel;
    InputSize size = InputSize::A;
    std::uint64_t seed = 42;   ///< arrival RNG + per-task input seeds

    /** Carry L1/L2 contents across tasks (warm re-activation). */
    bool warm_caches = false;

    /** Extra cool-down recorded after the last task finishes. */
    Seconds tail_rest = 0.0;

    /** Trace samples recorded per idle gap between tasks. */
    int idle_trace_samples = 64;
};

/** Per-task outcome on the scenario timeline. */
struct ScenarioTaskResult
{
    Seconds arrival = 0.0;
    Seconds start = 0.0;    ///< dispatch time (>= arrival when queued)
    Seconds finish = 0.0;
    Seconds response = 0.0; ///< finish - arrival (queueing included)
    bool sprint_granted = false;
    double melt_at_start = 0.0; ///< PCM melt fraction at dispatch
    double melt_at_end = 0.0;
    RunResult run;          ///< the full coupled-run result
};

/** Aggregate outcome of one scenario. */
struct ScenarioResult
{
    std::vector<ScenarioTaskResult> tasks;

    int sprints_granted = 0;
    int sprints_denied = 0;   ///< tasks the policy ran consolidated
    int sprints_exhausted = 0; ///< granted sprints ended by the policy
    int hardware_throttles = 0;

    Seconds makespan = 0.0;    ///< finish time of the last task
    double utilization = 0.0;  ///< machine-busy fraction of makespan
    Seconds p50_response = 0.0;
    Seconds p95_response = 0.0;
    Celsius peak_junction = 0.0;
    Joules total_energy = 0.0;
    Seconds total_sprint_time = 0.0; ///< sum of above-TDP time
    Joules total_sprint_energy = 0.0; ///< sum of above-TDP energy
    /**
     * Distinct sprint/rest cycles: times the PCM melt fraction rose
     * past the melt threshold and then refroze (fell below the
     * refreeze threshold) — the paper's repeated-burst signature.
     */
    int sprint_rest_cycles = 0;

    TimeSeries junction_trace; ///< full-timeline junction temperature
    TimeSeries power_trace;    ///< full-timeline die power
    TimeSeries melt_trace;     ///< full-timeline PCM melt fraction
};

/** Materialize @p cfg's arrival timeline (sorted by arrival). */
std::vector<ScenarioTask> buildArrivals(const ScenarioConfig &cfg);

/**
 * Count melt/refreeze cycles in @p melt with hysteresis: a cycle
 * completes when the series rises to >= @p rise and later falls to
 * <= @p fall.
 */
int countMeltRefreezeCycles(const TimeSeries &melt, double rise = 0.25,
                            double fall = 0.05);

/** Run @p cfg's timeline to completion. */
ScenarioResult runScenario(const ScenarioConfig &cfg);

} // namespace csprint

#endif // CSPRINT_SPRINT_SCENARIO_HH
