/**
 * @file
 * The multi-sprint Scenario engine: a timeline of task arrivals run
 * through one persistent MobilePackageModel, so PCM melt and refreeze
 * state carries across sprints and rests — the paper's sprint-and-
 * rest discipline (Section 3) and governor pacing (Section 7) driven
 * by the real machine+thermal loop instead of the analytical pacing
 * module.
 *
 * Tasks are served in arrival order by a single chip: a task starts
 * at max(its arrival, the previous task's finish); between tasks the
 * package cools at zero die power. At each task arrival the
 * SprintPolicy decides whether the sprint configuration is granted
 * (full width / boost) or the task runs consolidated on one core; the
 * machine is re-invoked per task (prepareMachine + samplePump),
 * optionally warm-starting L1/L2 contents from its predecessor
 * (Machine::warmStartFrom).
 *
 * A single back-to-back task under the greedy policy is exactly
 * runSprint(): same package lifecycle, same policy arithmetic, same
 * sample pump — bench/scenario_report.cc gates that equivalence
 * bit-for-bit on the fig07 configurations.
 *
 * Long-horizon fast path (PERF.md, "Long-horizon scenarios"): idle
 * gaps can route through the quiescent thermal super-stepper
 * (IdleModel::Quiescent), traces can record into a bounded
 * decimated ring or be dropped (TraceMode), per-task results can be
 * folded into streaming aggregates instead of being retained
 * (keep_task_results = false), and one very long timeline can be
 * replayed as a chain of resumable shards (ScenarioCheckpoint /
 * runScenarioSharded) with bit parity against the unsharded run. The
 * defaults keep the engine bit-identical to the classic full-trace
 * behaviour.
 */

#ifndef CSPRINT_SPRINT_SCENARIO_HH
#define CSPRINT_SPRINT_SCENARIO_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "sprint/policy.hh"
#include "sprint/simulation.hh"
#include "sprint/surrogate.hh"
#include "workloads/workload.hh"

namespace csprint {

/** How task arrivals are laid out on the timeline. */
enum class ArrivalPattern
{
    Periodic,   ///< one task every `period`
    Bursty,     ///< bursts of `burst_size` tasks every `period`
    Poisson,    ///< exponential inter-arrivals with mean `period`
    BackToBack, ///< all tasks queued at t = 0 (saturating train)
};

/** Stable lowercase name for reports and bench JSON keys. */
const char *arrivalPatternName(ArrivalPattern pattern);

/** All arrival patterns, in report order. */
const std::vector<ArrivalPattern> &allArrivalPatterns();

/** How the full-timeline traces are recorded. */
enum class TraceMode
{
    Full,          ///< every sample (bit-identical classic behaviour)
    DecimatedRing, ///< bounded buffer, uniform power-of-two decimation
    Off,           ///< no trace storage (streaming aggregates only)
};

/** How idle gaps between tasks advance the package. */
enum class IdleModel
{
    Exact,     ///< plain step() chunks (bit-identical classic path)
    Quiescent, ///< adaptive super-stepper (stepQuiescent fast path)
};

/** One entry of the arrival timeline. */
struct ScenarioTask
{
    Seconds arrival = 0.0;
    KernelId kernel = KernelId::Sobel;
    InputSize size = InputSize::A;
    std::uint64_t seed = 42;
    int priority = 0;        ///< larger = more important (QoS class)
    Seconds deadline = 0.0;  ///< relative to arrival; 0 = none
};

/** A complete scenario description. */
struct ScenarioConfig
{
    /**
     * The sprint-mode platform (cores, package, machine template).
     * Its `governor` member is unused here — the policy below carries
     * the governor tuning.
     */
    SprintConfig platform;
    SprintPolicyParams policy;

    ArrivalPattern pattern = ArrivalPattern::Periodic;
    int num_tasks = 4;
    /**
     * Timeline scale, in the same time-scaled seconds as the
     * platform package: the inter-arrival period (Periodic), the
     * burst-to-burst period (Bursty), or the mean inter-arrival
     * (Poisson). Ignored by BackToBack.
     */
    Seconds period = 2.5e-3;
    int burst_size = 2;          ///< Bursty: tasks per burst
    Seconds burst_spacing = 0.0; ///< Bursty: gap inside a burst

    KernelId kernel = KernelId::Sobel;
    InputSize size = InputSize::A;
    std::uint64_t seed = 42;   ///< arrival RNG + per-task input seeds

    /**
     * Custom per-task program builder; null uses
     * buildKernelProgram(task.kernel, task.size, task.seed). Lets a
     * scenario draw per-task workloads from any distribution (and the
     * scale bench run micro-programs far smaller than the Table 1
     * kernels).
     */
    std::function<ParallelProgram(const ScenarioTask &)> program_factory;

    /** Carry L1/L2 contents across tasks (warm re-activation). */
    bool warm_caches = false;

    // --- Mixed-priority / QoS knobs (defaults = classic engine) ----

    /**
     * Fraction of tasks arriving as priority 1 (the rest are priority
     * 0). Each task's class is a deterministic hash of its seed —
     * independent of the arrival RNG stream and of delivery order, so
     * checkpoints need no extra state. 0 keeps every task priority 0.
     */
    double hi_priority_fraction = 0.0;

    /** Relative deadline given to priority-1 tasks (0 = none). */
    Seconds deadline_hi = 0.0;

    /** Relative deadline given to priority-0 tasks (0 = none). */
    Seconds deadline_lo = 0.0;

    /**
     * Final per-task hook applied by nextArrival after every stock
     * field (pattern arrival, seed, priority, deadline) is set. Must
     * be a pure function of the task it receives (it runs inside the
     * streaming arrival generator, so any hidden state would break
     * checkpoint replay). Lets a study pin sizes, priorities, or
     * deadlines per timeline position.
     */
    std::function<void(ScenarioTask &)> task_tuner;

    /**
     * Custom policy builder; null uses makeSprintPolicy(policy).
     * The engine rebuilds the policy per advanceScenario call and
     * re-applies saveState/restoreState around it, so factories must
     * return equivalently-configured instances each time.
     */
    std::function<std::unique_ptr<SprintPolicy>()> policy_factory;

    /** Extra cool-down recorded after the last task finishes. */
    Seconds tail_rest = 0.0;

    /** Trace samples recorded per idle gap between tasks. */
    int idle_trace_samples = 64;

    // --- Long-horizon fast-path knobs (defaults = classic engine) ---

    /** Trace storage policy for the full-timeline traces. */
    TraceMode trace_mode = TraceMode::Full;

    /** Per-trace sample budget in DecimatedRing mode. */
    std::size_t trace_capacity = 4096;

    /**
     * Retain per-task ScenarioTaskResults (response quantiles are
     * then exact). When false, tasks fold into O(1) streaming
     * aggregates (P² quantiles) and ScenarioResult::tasks stays
     * empty — memory is constant in task count.
     */
    bool keep_task_results = true;

    /** Idle-gap integration path. */
    IdleModel idle_model = IdleModel::Exact;

    /** Endpoint tolerance of the quiescent idle path [°C]. */
    Celsius idle_tolerance = 0.01;

    // --- Dispatch / build pipeline knobs (defaults = classic) ------

    /**
     * Testing knob: ignore the policy's declared dispatchOrder() and
     * dispatch through the generic snapshot-materializing pickNext
     * scan. Dispatch decisions are bit-identical either way (the
     * ready-queue heap realizes the same order); the differential
     * harness runs both.
     */
    bool generic_dispatch = false;

    /**
     * Build the next task's program on a helper thread while the
     * current task pumps, taking the build off the timeline's
     * critical path for build-heavy factories. program_factory must
     * be a pure, thread-safe function of the task it receives (the
     * stock factories are); a prebuilt program is used only when the
     * dispatched task is exactly the one it was built for, so a
     * mispredicted dispatch just falls back to the serial build.
     */
    bool pipeline_build = false;

    /**
     * Determinism guard for pipeline_build: also build the program
     * serially at dispatch and require the prebuilt one to be
     * byte-identical (programDigest over every materialized op).
     * Costs a second build per task — a test/CI knob, not a fast
     * path.
     */
    bool verify_pipeline_build = false;

    // --- Surrogate fidelity tier (default = cycle-accurate) --------

    /**
     * Execution fidelity of the task pumps (PERF.md, "Surrogate
     * fidelity tier"). The CycleAccurate default keeps the engine
     * bit-identical to the classic behaviour; Surrogate/Auto let
     * calibrated per-class task models replace machine pumps on the
     * bulk of a fleet-scale train. Restricted to non-preemptive
     * policies with cold caches (the admissibility contract).
     */
    SurrogateParams surrogate;

    /**
     * Paranoia mode: run validateCheckpoint() (checkpoint.hh) on the
     * checkpoint at every advanceScenario boundary — finite
     * temperatures in physical bounds, melt fractions in [0, 1],
     * directory sharers consistent with L1 tag state, non-negative
     * monotone energy tallies. Failure throws CheckpointError with
     * Kind::Invariant and a precise message. A debugging/CI knob.
     */
    bool validate_checkpoints = false;
};

/**
 * Streaming generator of the arrival timeline: produces task i without
 * materializing tasks 0..i-1, and is value-copyable, so a checkpoint
 * can snapshot the RNG cursor mid-timeline. nextArrival(cfg, cursor)
 * yields exactly the sequence buildArrivals(cfg) materializes.
 */
struct ArrivalCursor
{
    ArrivalCursor() : rng(42) {}
    explicit ArrivalCursor(const ScenarioConfig &cfg) : rng(cfg.seed) {}

    Rng rng;                    ///< Poisson gap stream
    Seconds poisson_clock = 0.0;
    std::uint64_t index = 0;    ///< next task index to generate
};

/** Generate the next task of @p cfg's timeline and advance @p cursor. */
ScenarioTask nextArrival(const ScenarioConfig &cfg,
                         ArrivalCursor &cursor);

/** Materialize @p cfg's arrival timeline (sorted by arrival). */
std::vector<ScenarioTask> buildArrivals(const ScenarioConfig &cfg);

/** One entry of a stock workload mix. */
struct WorkloadMixEntry
{
    KernelId kernel = KernelId::Sobel;
    InputSize size = InputSize::A;
    double weight = 1.0;
};

/**
 * Stock program_factory: draw each task's kernel/size from the
 * weighted @p mix, deterministically from the task's seed (which the
 * arrival generator derives from the scenario seed), so mixed
 * workload timelines are a one-liner:
 *
 *   cfg.program_factory = makeWorkloadMixFactory({{KernelId::Sobel,
 *       InputSize::A, 3.0}, {KernelId::Kmeans, InputSize::B, 1.0}});
 */
std::function<ParallelProgram(const ScenarioTask &)>
makeWorkloadMixFactory(std::vector<WorkloadMixEntry> mix);

/**
 * Streaming melt/refreeze hysteresis counter: a cycle completes when
 * the melt fraction rises to >= rise and later falls to <= fall.
 * Value-semantic, so it checkpoints by copy.
 */
class MeltCycleCounter
{
  public:
    explicit MeltCycleCounter(double rise = 0.25, double fall = 0.05);

    /** Fold one melt-fraction sample in. */
    void add(double melt);

    /** Completed cycles so far. */
    int cycles() const { return cycles_; }

  private:
    friend struct CheckpointIO;

    double rise_;
    double fall_;
    bool molten_ = false;
    int cycles_ = 0;
};

/**
 * Count melt/refreeze cycles in @p melt with hysteresis: a cycle
 * completes when the series rises to >= @p rise and later falls to
 * <= @p fall.
 */
int countMeltRefreezeCycles(const TimeSeries &melt, double rise = 0.25,
                            double fall = 0.05);

/** Per-task outcome on the scenario timeline. */
struct ScenarioTaskResult
{
    Seconds arrival = 0.0;
    Seconds start = 0.0;    ///< first dispatch (>= arrival when queued)
    Seconds finish = 0.0;
    Seconds response = 0.0; ///< finish - arrival (queueing included)
    bool sprint_granted = false;
    double melt_at_start = 0.0; ///< PCM melt fraction at dispatch
    double melt_at_end = 0.0;
    int priority = 0;
    Seconds deadline = 0.0;    ///< relative to arrival; 0 = none
    bool deadline_met = true;  ///< vacuously true without a deadline
    int preemptions = 0;       ///< times this task was suspended
    RunResult run;          ///< the full coupled-run result
};

/** Aggregate outcome of one scenario. */
struct ScenarioResult
{
    /**
     * Per-task results in completion order (identical to arrival
     * order unless a preemptive policy reordered or suspended work);
     * empty when keep_task_results is false.
     */
    std::vector<ScenarioTaskResult> tasks;

    /** Tasks served (counts even when per-task results are dropped). */
    std::uint64_t tasks_completed = 0;

    int sprints_granted = 0;
    int sprints_denied = 0;   ///< tasks the policy ran consolidated
    int sprints_exhausted = 0; ///< granted sprints ended by the policy
    int hardware_throttles = 0;
    int preemptions = 0;      ///< mid-task suspensions performed
    int tasks_dropped = 0;    ///< arrivals the policy rejected
    int deadlines_met = 0;    ///< completed within their deadline
    int deadlines_missed = 0; ///< overshot or dropped with a deadline

    Seconds makespan = 0.0;    ///< finish time of the last task
    double utilization = 0.0;  ///< machine-busy fraction of makespan
    /**
     * Response-time quantiles: exact (nearest-rank) when per-task
     * results are kept, streaming P² estimates otherwise.
     */
    Seconds p50_response = 0.0;
    Seconds p95_response = 0.0;
    Celsius peak_junction = 0.0;
    Joules total_energy = 0.0;
    Seconds total_sprint_time = 0.0; ///< sum of above-TDP time
    Joules total_sprint_energy = 0.0; ///< sum of above-TDP energy
    /** Largest PCM melt fraction seen (tracked pre-decimation). */
    double peak_melt_fraction = 0.0;
    /**
     * Distinct sprint/rest cycles: times the PCM melt fraction rose
     * past the melt threshold and then refroze (fell below the
     * refreeze threshold) — the paper's repeated-burst signature.
     * Counted on the undecimated sample stream.
     */
    int sprint_rest_cycles = 0;

    // --- Surrogate fidelity tier tallies (0 under CycleAccurate) ---
    std::uint64_t surrogate_tasks = 0; ///< tasks served by prediction
    std::uint64_t audit_tasks = 0;     ///< exact audits sampled (Auto)
    int surrogate_demotions = 0;       ///< classes demoted by audits

    TimeSeries junction_trace; ///< full-timeline junction temperature
    TimeSeries power_trace;    ///< full-timeline die power
    TimeSeries melt_trace;     ///< full-timeline PCM melt fraction
};

/**
 * The full-timeline trace recorder behind ScenarioConfig::trace_mode:
 * Full appends every sample (bulk-appending whole per-task traces),
 * DecimatedRing records into three bounded DecimatingTrace buffers,
 * Off stores nothing.
 */
class ScenarioTraceSink
{
  public:
    ScenarioTraceSink() = default;

    /** Select the mode; must precede the first sample. */
    void configure(TraceMode mode, std::size_t capacity);

    /** Pre-size for @p n more samples (Full mode; no-op otherwise). */
    void reserveMore(std::size_t n);

    /** Record one (junction, power, melt) sample at time @p t. */
    void add(double t, double junction, double power, double melt);

    /** Bulk-append one task's traces (sizes must match). */
    void append(const TimeSeries &junction, const TimeSeries &power,
                const TimeSeries &melt);

    /** Move the recorded traces into @p out. */
    void exportTo(ScenarioResult &out);

  private:
    friend struct CheckpointIO;

    TraceMode mode_ = TraceMode::Full;
    TimeSeries junction_, power_, melt_;           ///< Full
    DecimatingTrace junction_ring_, power_ring_, melt_ring_;
};

/**
 * One timeline task in flight: the task's metadata plus, once it has
 * been dispatched, its live machine, program, and accumulated pump
 * state. A preempted task is exactly this struct parked in the ready
 * queue — the machine holds the architectural progress (op cursors,
 * caches, directory), the pump state the trace/energy accumulators —
 * and resuming is another pumpTaskSlice over the same pair. Live
 * machines make a checkpoint carrying executions in-process only
 * (like the warm-restart chain).
 */
struct ScenarioTaskExecution
{
    ScenarioTask task;
    bool started = false;        ///< dispatched at least once
    bool sprint_granted = false; ///< valid once started
    int preemptions = 0;
    Seconds first_start = 0.0;
    double melt_at_start = 0.0;
    SprintConfig run_cfg;        ///< platform actually granted
    std::unique_ptr<ParallelProgram> program;
    std::unique_ptr<Machine> machine;
    PumpState pump;

    /**
     * Auto-tier audit in flight: the class prediction was taken at
     * dispatch and will be graded against the pump's ground truth at
     * completion. Never serialized — non-preemptive tasks (the only
     * ones the surrogate tier admits) complete inside the advance
     * call that dispatched them, so no checkpoint boundary can cut an
     * audit in half.
     */
    bool audit = false;
    SurrogatePrediction audit_prediction;
};

/**
 * A resumable scenario position, taken at a task boundary. Snapshots
 * the package thermal state (ThermalNetworkState: node temperatures,
 * melt fractions, injected powers), the policy's cross-task state,
 * the arrival RNG cursor, the timeline clock, and every streaming
 * aggregate; optionally carries the warm machine's L1/L2 contents
 * (live Machine, in-process only — a checkpoint without a warm chain
 * is plain value state). Obtained from beginScenario(), advanced by
 * advanceScenario(), consumed by finishScenario(); replaying a
 * timeline through any shard sizes reproduces the unsharded run
 * bit-for-bit (gated in bench/scenario_scale_report.cc).
 */
struct ScenarioCheckpoint
{
    bool done = false;            ///< every task has been dispatched
    ArrivalCursor arrivals;       ///< RNG cursor into the timeline

    ThermalNetworkState thermal;  ///< package snapshot at the boundary
    std::vector<double> policy_state; ///< SprintPolicy::saveState()

    // --- Streaming aggregates (all value-semantic) -----------------
    Seconds now = 0.0;
    Seconds busy = 0.0;
    std::uint64_t tasks_completed = 0;
    int sprints_granted = 0;
    int sprints_denied = 0;
    int sprints_exhausted = 0;
    int hardware_throttles = 0;
    int preemptions = 0;
    int tasks_dropped = 0;
    int deadlines_met = 0;
    int deadlines_missed = 0;
    Celsius peak_junction = 0.0;
    Joules total_energy = 0.0;
    Seconds total_sprint_time = 0.0;
    Joules total_sprint_energy = 0.0;
    double peak_melt = 0.0;
    P2Quantile p50{0.50};
    P2Quantile p95{0.95};
    MeltCycleCounter melt_cycles;
    ScenarioTraceSink traces;
    /**
     * Surrogate calibration state and audit cursor (value-semantic;
     * serialized, so Auto-tier sharded replay is bit-exact even when
     * a shard cut lands mid-calibration).
     */
    TaskSurrogate surrogate;
    std::vector<ScenarioTaskResult> tasks; ///< when keep_task_results

    // --- Preemptive scheduler state at the boundary ----------------
    /**
     * The next generated-but-undelivered arrival (the engine peeks
     * one task ahead to detect mid-task arrivals); value state.
     */
    bool have_peek = false;
    ScenarioTask peek;
    /**
     * Arrivals delivered but not finished, in arrival order: entries
     * that never started are value state, a suspended entry carries
     * its live machine — so a checkpoint cut between a preemption and
     * a resume carries the preempted task's full progress instead of
     * restarting it from scratch (in-process only, like the warm
     * chain below).
     */
    std::vector<std::unique_ptr<ScenarioTaskExecution>> ready;

    // --- Warm re-activation chain (in-process only) ----------------
    std::unique_ptr<ParallelProgram> warm_program;
    std::unique_ptr<Machine> warm_machine;
};

/**
 * The consolidated (sprint-denied) variant of @p platform: one core,
 * one thread, no DVFS boost, no activation ramp. This is the platform
 * a task actually runs under when the policy denies its sprint; the
 * checkpoint serializer stores only the sprint_granted bit and
 * rederives the run configuration through this function.
 */
SprintConfig consolidatedPlatform(const SprintConfig &platform);

/** Validate @p cfg and open a checkpoint at the start of its timeline. */
ScenarioCheckpoint beginScenario(const ScenarioConfig &cfg);

/**
 * Complete up to @p max_tasks further tasks of @p cfg's timeline from
 * @p ck, leaving @p ck at a resumable task boundary (suspended or
 * queued work rides along inside the checkpoint). Returns true once
 * every task has finished or been dropped (tail rest not yet
 * applied).
 */
bool advanceScenario(const ScenarioConfig &cfg, ScenarioCheckpoint &ck,
                     std::uint64_t max_tasks);

/**
 * Apply the tail rest and fold @p ck into the final ScenarioResult.
 * Requires advanceScenario to have returned true.
 */
ScenarioResult finishScenario(const ScenarioConfig &cfg,
                              ScenarioCheckpoint &&ck);

/** Run @p cfg's timeline to completion. */
ScenarioResult runScenario(const ScenarioConfig &cfg);

/**
 * Run @p cfg's timeline as a chain of resumable shards of
 * @p shard_tasks tasks each — the checkpointed equivalent of
 * runScenario(cfg), bit-for-bit.
 */
ScenarioResult runScenarioSharded(const ScenarioConfig &cfg,
                                  std::uint64_t shard_tasks);

} // namespace csprint

#endif // CSPRINT_SPRINT_SCENARIO_HH
