/**
 * @file
 * Supervised execution of scenario shard batches on top of the
 * portable checkpoint layer (sprint/checkpoint.hh): each shard runs
 * under a worker that persists a crash-safe checkpoint every few
 * tasks, a watchdog that cancels workers whose heartbeat goes stale,
 * and a bounded-retry loop that restarts a failed worker from its
 * last valid persisted checkpoint with exponential backoff. A shard
 * that exhausts its retries is reported as degraded — carrying the
 * exception that killed it — instead of being silently dropped.
 *
 * Determinism gate: because checkpoints capture the full trajectory
 * (thermal state, arrival RNG cursor, suspended machines, streaming
 * aggregates), a supervised run that crashes and recovers any number
 * of times produces final aggregates and traces bit-identical to an
 * uninterrupted run. tests/faultinject_test.cc holds that gate per
 * fault kind; bench/faultinject_report.cc re-checks it in CI under a
 * rotating seed.
 *
 * Fault injection is first-class and seed-deterministic: a FaultPlan
 * names, per shard, which checkpoint sequence number triggers which
 * FaultKind. Faults are one-shot — a retry of the same shard does not
 * re-fire a fault that already fired — mirroring transient real-world
 * failures.
 */

#ifndef CSPRINT_SPRINT_SUPERVISOR_HH
#define CSPRINT_SPRINT_SUPERVISOR_HH

#include <cstdint>
#include <exception>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sprint/scenario.hh"

namespace csprint {

class CheckpointStore;

/** The failure modes the supervisor can inject and recover from. */
enum class FaultKind
{
    /**
     * The worker dies immediately before persisting a checkpoint:
     * recovery resumes from the previous persisted one and replays
     * the lost slice.
     */
    CrashAtCheckpoint,

    /**
     * The checkpoint is persisted, one bit of the file is flipped
     * (bit rot / torn storage), and the worker dies: recovery must
     * reject the corrupt file via its CRC and fall back to the
     * retained predecessor.
     */
    BitFlip,

    /**
     * The persisted checkpoint loses its tail (partial write that
     * survived a rename-less filesystem): recovery must reject the
     * truncated file and fall back.
     */
    Truncate,

    /**
     * The worker throws a plain exception mid-run (a bug, a resource
     * failure): the supervisor retries from the last checkpoint.
     */
    WorkerException,

    /**
     * The worker stops making progress without dying: the watchdog
     * must notice the stale heartbeat, cancel the worker, and retry.
     */
    Stall,

    // --- Process-level kinds (the fleet driver's transport, ---------
    // --- sprint/fleet.hh; Unsupported on the thread transport) ------

    /**
     * The worker process SIGKILLs itself right after persisting the
     * checkpoint — the real uncatchable kill, no destructors, no
     * flushes. The parent must reap it and respawn the shard range,
     * resuming from the newest valid persisted checkpoint.
     */
    KillWorker,

    /**
     * The worker process stops sending frames without dying: the
     * parent's watchdog must notice the silent pipe, SIGKILL the
     * process, and respawn it.
     */
    StallWorker,

    /**
     * The worker writes a garbage frame onto the result pipe (torn
     * protocol state): the parent must reject the frame by its
     * magic/CRC, kill the worker, and respawn it.
     */
    CorruptPipe,
};

/** Human-readable name of @p kind (for logs and reports). */
const char *faultKindName(FaultKind kind);

/** One injected fault: fires when @p shard persists checkpoint @p at_seq. */
struct FaultSpec
{
    int shard = 0;
    FaultKind kind = FaultKind::CrashAtCheckpoint;
    std::uint64_t at_seq = 1;
};

/** A deterministic set of one-shot faults for a supervised batch. */
struct FaultPlan
{
    std::vector<FaultSpec> faults;

    /**
     * A seed-derived plan that hits every shard in [0, num_shards)
     * with one fault of a seed-chosen thread-transport kind at a
     * seed-chosen checkpoint in [1, max_seq]. Equal seeds yield equal
     * plans.
     */
    static FaultPlan randomized(std::uint64_t seed, int num_shards,
                                std::uint64_t max_seq);

    /**
     * Like randomized(), but drawing from the full kind set including
     * the process-level faults (KillWorker / StallWorker /
     * CorruptPipe) — for the fleet driver's process transport, which
     * recovers from all of them. Stall is excluded: each stall costs
     * a full watchdog deadline of wall time, and StallWorker already
     * covers the silent-worker case.
     */
    static FaultPlan randomizedProcess(std::uint64_t seed,
                                       int num_shards,
                                       std::uint64_t max_seq);
};

/** True for the process-transport-only kinds (fleet driver faults). */
bool faultKindIsProcessLevel(FaultKind kind);

/** Thrown by an injected CrashAtCheckpoint/BitFlip/Truncate fault. */
struct SimulatedCrash : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** Thrown inside a worker the watchdog cancelled for a stale heartbeat. */
struct WatchdogTimeout : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

struct SupervisorOptions
{
    /**
     * Persist a checkpoint after every this many completed tasks.
     * Also the slice length handed to advanceScenario, so it bounds
     * both the work lost to a crash and the heartbeat period.
     */
    std::uint64_t checkpoint_every_tasks = 4;

    /** Restarts allowed per shard before it is reported degraded. */
    int max_retries = 3;

    /**
     * Sleep before retry r is backoff_initial * 2^r seconds. Zero
     * (the default) retries immediately — tests want no wall-clock
     * padding; production batches want a real value.
     */
    double backoff_initial = 0.0;

    /**
     * Seconds without a worker heartbeat before the watchdog cancels
     * it. Must comfortably exceed the wall time of one checkpoint
     * slice, since workers only beat between slices.
     */
    double watchdog_deadline = 30.0;

    /** Directory the CheckpointStore persists under. Required. */
    std::string store_dir;

    /**
     * Run validateCheckpoint() on every checkpoint before persisting
     * it (in addition to whatever ScenarioConfig::validate_checkpoints
     * already does inside the engine).
     */
    bool paranoia = false;
};

/** What became of one shard of a supervised batch. */
struct ShardOutcome
{
    /** The shard's final result; meaningful only when !degraded. */
    ScenarioResult result;

    /** True when the shard exhausted its retries without finishing. */
    bool degraded = false;

    /** Worker restarts this shard consumed. */
    int retries = 0;

    /** Checkpoints persisted across all attempts. */
    std::uint64_t checkpoints_persisted = 0;

    /** Attempts that resumed from a stored checkpoint (vs. fresh). */
    std::uint64_t recoveries = 0;

    /**
     * The exception that ended the last attempt; set when degraded,
     * and also kept (for diagnosis) when a retry eventually
     * succeeded after failures.
     */
    std::exception_ptr error;
};

struct SupervisedBatchResult
{
    std::vector<ShardOutcome> shards;

    /** True when no shard is degraded. */
    bool allOk() const;
};

// --- Shared shard-attempt core ------------------------------------------
//
// Both supervision transports — the in-process thread supervisor
// below and the multi-process fleet driver (sprint/fleet.hh) — run
// the same loop per shard: recover from the newest valid persisted
// checkpoint (corrupt candidates rejected by CRC, falling back to the
// retained predecessor), advance in checkpoint-sized slices, enforce
// the forward-motion invariants, and persist every boundary. Only the
// transport differs (heartbeat atomics + cooperative cancel vs. pipe
// frames + SIGKILL), so the core is shared and the transports inject
// their behaviour through the hooks.

/** Progress tallies one shard accumulates across attempts. */
struct ShardProgress
{
    std::uint64_t checkpoints_persisted = 0;
    std::uint64_t recoveries = 0;
};

/** Heartbeat hook; may throw to cancel the attempt cooperatively. */
using ShardBeatFn = std::function<void()>;

/**
 * Persistence hook, fired with the checkpoint sequence number either
 * immediately before or immediately after the store publishes it.
 * Fault injection lives here: throw to simulate a crash, corrupt the
 * persisted file first to simulate bit rot, or (process transport)
 * never return at all.
 */
using ShardPersistHook = std::function<void(std::uint64_t seq)>;

/**
 * One attempt at running shard @p shard of @p cfg to completion:
 * recover-or-begin, advance in @p checkpoint_every_tasks slices,
 * persist each boundary into @p store, finish. @p beat is called
 * around every slice; @p beforePersist / @p afterPersist bracket
 * every store publish (either may be null). When @p final_blob is
 * non-null it receives the bytes of the final persisted checkpoint —
 * the exact bytes a parent process reaps over the wire, so per-shard
 * digests agree between transports. Throws on hook-injected faults,
 * violated monotonicity invariants, or genuine engine errors.
 */
ScenarioResult runShardToCompletion(
    const ScenarioConfig &cfg, int shard, CheckpointStore &store,
    std::uint64_t checkpoint_every_tasks, bool paranoia,
    const ShardBeatFn &beat, const ShardPersistHook &beforePersist,
    const ShardPersistHook &afterPersist, ShardProgress &progress,
    std::vector<std::uint8_t> *final_blob = nullptr);

/** Sleep length before retry @p attempt (attempt >= 1): initial*2^(a-1). */
double retryBackoffSeconds(double backoff_initial, int attempt);

/** Flip one bit in the middle of @p path (injected bit rot). */
void faultFlipBitInFile(const std::string &path);

/** Cut @p path down to half its length (injected torn write). */
void faultTruncateFile(const std::string &path);

/**
 * Run every ScenarioConfig in @p shards to completion under
 * supervision: periodic crash-safe checkpoint persistence into
 * @p opts.store_dir, watchdog cancellation of stalled workers, and up
 * to @p opts.max_retries restarts per shard from the last valid
 * checkpoint. @p plan's faults fire deterministically (one-shot) at
 * their named checkpoints. Shards run in order; each worker runs on
 * its own thread so the watchdog can observe it.
 *
 * Pre-existing checkpoints in the store are honoured: a batch that
 * was killed externally resumes where its shards left off.
 */
SupervisedBatchResult
runSupervisedScenarioBatch(const std::vector<ScenarioConfig> &shards,
                           const SupervisorOptions &opts,
                           const FaultPlan &plan = {});

} // namespace csprint

#endif // CSPRINT_SPRINT_SUPERVISOR_HH
