#include "sprint/fleet.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/args.hh"
#include "common/blob.hh"
#include "common/rng.hh"
#include "sprint/checkpoint.hh"

namespace csprint {

namespace {

constexpr std::uint32_t kFleetSpecVersion = 1;
constexpr std::uint32_t kFleetAggVersion = 1;

/**
 * Digest slot of the sealed spec FILE: the spec cannot seal itself
 * under its own digest (the reader does not know it yet), so the file
 * uses this constant and carries the true digest in its payload.
 */
constexpr std::uint32_t kFleetFileDigest = 0x464c5401u;

// --- Pipe frame protocol --------------------------------------------
//
// Every worker->parent message is one frame:
//
//   u32 magic ("CSFR")  u32 type  u64 payload length
//   ...payload...       u32 CRC32 over the payload
//
// all little-endian, so a torn or garbage frame is rejected by magic
// or CRC instead of desynchronizing the stream.

constexpr std::uint32_t kFrameMagic = 0x52465343u; // "CSFR"
constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

enum FrameType : std::uint32_t
{
    kFrameHello = 1,      ///< worker up: begin, end, attempt
    kFrameBeat = 2,       ///< heartbeat: device index
    kFrameFaultFired = 3, ///< one-shot fault index just fired
    kFrameDeviceDone = 4, ///< device index + final checkpoint blob
    kFrameRangeDone = 5,  ///< sealed FleetAggregates of the range
    kFrameError = 6,      ///< human-readable failure message
};

std::uint32_t
readLe32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t
readLe64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

void
writeLe64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

[[noreturn]] void
throwIo(const std::string &what)
{
    throw CheckpointError(CheckpointError::Kind::Io,
                          what + (errno != 0
                                      ? std::string(": ") +
                                            std::strerror(errno)
                                      : std::string()));
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throwIo("cannot open " + path);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad())
        throwIo("cannot read " + path);
    return bytes;
}

void
writeFileBytes(const std::string &path,
               const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throwIo("cannot create " + path);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out)
        throwIo("cannot write " + path);
}

/** Worker-side: write @p n bytes fully; the parent's death ends us. */
void
writeAll(int fd, const void *data, std::size_t n)
{
    const char *p = static_cast<const char *>(data);
    while (n > 0) {
        const ssize_t k = ::write(fd, p, n);
        if (k < 0) {
            if (errno == EINTR)
                continue;
            ::_exit(21); // parent gone (EPIPE): nothing left to report to
        }
        p += k;
        n -= static_cast<std::size_t>(k);
    }
}

void
sendFrame(int fd, std::uint32_t type,
          const std::vector<std::uint8_t> &payload)
{
    BlobWriter w;
    w.u32(kFrameMagic);
    w.u32(type);
    w.u64(payload.size());
    w.bytes(payload.data(), payload.size());
    w.u32(crc32(payload.data(), payload.size()));
    const auto &buf = w.buffer();
    writeAll(fd, buf.data(), buf.size());
}

void
sendFrameU64s(int fd, std::uint32_t type,
              std::initializer_list<std::uint64_t> words)
{
    BlobWriter w;
    for (std::uint64_t v : words)
        w.u64(v);
    sendFrame(fd, type, w.buffer());
}

struct ParsedFrame
{
    std::uint32_t type = 0;
    std::vector<std::uint8_t> payload;
};

/** 1 = frame extracted, 0 = need more bytes, -1 = corrupt stream. */
int
tryParseFrame(std::vector<std::uint8_t> &buf, ParsedFrame &out)
{
    if (buf.size() < 16)
        return 0;
    const std::uint32_t magic = readLe32(buf.data());
    const std::uint32_t type = readLe32(buf.data() + 4);
    const std::uint64_t len = readLe64(buf.data() + 8);
    if (magic != kFrameMagic)
        return -1;
    if (type < kFrameHello || type > kFrameError)
        return -1;
    if (len > kMaxFramePayload)
        return -1;
    if (buf.size() < 16 + len + 4)
        return 0;
    const std::uint32_t want = readLe32(buf.data() + 16 + len);
    if (crc32(buf.data() + 16, static_cast<std::size_t>(len)) != want)
        return -1;
    out.type = type;
    out.payload.assign(buf.begin() + 16,
                       buf.begin() + 16 + static_cast<long>(len));
    buf.erase(buf.begin(), buf.begin() + 16 + static_cast<long>(len) + 4);
    return 1;
}

// --- Spec payload ---------------------------------------------------

template <typename E>
E
decodeEnum(std::int64_t v, std::int64_t hi, const char *what)
{
    if (v < 0 || v > hi)
        throw CheckpointError(CheckpointError::Kind::Corrupt,
                              std::string("fleet spec: ") + what +
                                  " value " + std::to_string(v) +
                                  " out of range");
    return static_cast<E>(v);
}

void
writeSpecBody(BlobWriter &w, const FleetSpec &spec)
{
    w.u64(spec.seed);
    w.i64(spec.num_devices);
    w.f64(spec.time_scale);
    w.f64(spec.thermal_limit);
    w.vec(spec.classes, [](BlobWriter &w, const FleetDeviceClass &c) {
        w.f64(c.weight);
        w.i64(c.cores);
        w.f64(c.pcm_mass_lo);
        w.f64(c.pcm_mass_hi);
        w.f64(c.ambient_lo);
        w.f64(c.ambient_hi);
        w.i64(static_cast<std::int64_t>(c.policy));
        w.f64(c.pacing_period);
        w.f64(c.service_prior);
        w.i64(static_cast<std::int64_t>(c.pattern));
        w.i64(c.num_tasks);
        w.f64(c.period);
        w.i64(c.burst_size);
        w.f64(c.burst_spacing);
        w.vec(c.mix, [](BlobWriter &w, const WorkloadMixEntry &m) {
            w.i64(static_cast<std::int64_t>(m.kernel));
            w.i64(static_cast<std::int64_t>(m.size));
            w.f64(m.weight);
        });
        w.i64(static_cast<std::int64_t>(c.kernel));
        w.i64(static_cast<std::int64_t>(c.size));
        w.boolean(c.warm_caches);
        w.f64(c.hi_priority_fraction);
        w.f64(c.deadline_hi);
        w.f64(c.deadline_lo);
        w.f64(c.tail_rest);
    });
}

FleetSpec
readSpecBody(BlobReader &r)
{
    FleetSpec spec;
    spec.seed = r.u64();
    const std::int64_t nd = r.i64();
    if (nd < 1 || nd > (1 << 20))
        throw CheckpointError(CheckpointError::Kind::Corrupt,
                              "fleet spec: device count " +
                                  std::to_string(nd) +
                                  " outside [1, 2^20]");
    spec.num_devices = static_cast<int>(nd);
    spec.time_scale = r.f64();
    spec.thermal_limit = r.f64();
    spec.classes =
        r.vec<FleetDeviceClass>(8 * 20, [](BlobReader &r) {
            FleetDeviceClass c;
            c.weight = r.f64();
            c.cores = static_cast<int>(r.i64());
            c.pcm_mass_lo = r.f64();
            c.pcm_mass_hi = r.f64();
            c.ambient_lo = r.f64();
            c.ambient_hi = r.f64();
            c.policy = decodeEnum<SprintPolicyKind>(r.i64(), 6,
                                                    "policy kind");
            c.pacing_period = r.f64();
            c.service_prior = r.f64();
            c.pattern = decodeEnum<ArrivalPattern>(r.i64(), 3,
                                                   "arrival pattern");
            c.num_tasks = static_cast<int>(r.i64());
            c.period = r.f64();
            c.burst_size = static_cast<int>(r.i64());
            c.burst_spacing = r.f64();
            c.mix = r.vec<WorkloadMixEntry>(24, [](BlobReader &r) {
                WorkloadMixEntry m;
                m.kernel = decodeEnum<KernelId>(r.i64(), 5, "kernel");
                m.size = decodeEnum<InputSize>(r.i64(), 3, "size");
                m.weight = r.f64();
                return m;
            });
            c.kernel = decodeEnum<KernelId>(r.i64(), 5, "kernel");
            c.size = decodeEnum<InputSize>(r.i64(), 3, "size");
            c.warm_caches = r.boolean();
            c.hi_priority_fraction = r.f64();
            c.deadline_hi = r.f64();
            c.deadline_lo = r.f64();
            c.tail_rest = r.f64();
            return c;
        });
    return spec;
}

} // namespace

// --- Spec validation and sampling -----------------------------------

void
validateFleetSpec(const FleetSpec &spec)
{
    if (spec.num_devices < 1)
        throw std::invalid_argument("fleet needs at least one device");
    if (spec.classes.empty())
        throw std::invalid_argument(
            "fleet needs at least one device class");
    if (!(spec.time_scale > 0.0))
        throw std::invalid_argument("time_scale must be positive");
    double total = 0.0;
    for (const FleetDeviceClass &c : spec.classes) {
        if (!(c.weight > 0.0) || !std::isfinite(c.weight))
            throw std::invalid_argument(
                "device class weight must be positive and finite");
        if (c.cores < 1)
            throw std::invalid_argument(
                "device class needs at least one core");
        if (c.num_tasks < 1)
            throw std::invalid_argument(
                "device class needs at least one task");
        if (!(c.pcm_mass_lo >= 0.0) || c.pcm_mass_hi < c.pcm_mass_lo)
            throw std::invalid_argument(
                "device class PCM mass range is invalid");
        if (c.ambient_hi < c.ambient_lo)
            throw std::invalid_argument(
                "device class ambient range is invalid");
        if (c.pattern != ArrivalPattern::BackToBack && !(c.period > 0.0))
            throw std::invalid_argument(
                "device class period must be positive");
        if (c.burst_size < 1)
            throw std::invalid_argument(
                "device class burst size must be positive");
        for (const WorkloadMixEntry &m : c.mix)
            if (!(m.weight > 0.0))
                throw std::invalid_argument(
                    "workload mix weights must be positive");
        total += c.weight;
    }
    if (!(total > 0.0))
        throw std::invalid_argument(
            "device class weights must sum to a positive total");
}

ScenarioConfig
fleetDeviceConfig(const FleetSpec &spec, int device)
{
    validateFleetSpec(spec);
    if (device < 0 || device >= spec.num_devices)
        throw std::invalid_argument("device index out of range");

    // The per-device stream depends on (spec.seed, device) alone, so
    // any process rebuilds any device without coordination. The
    // SplitMix64 hop decorrelates adjacent device indices.
    SplitMix64 sm(spec.seed);
    const std::uint64_t fleet_stream = sm.next();
    Rng rng(fleet_stream ^
            (0x9e3779b97f4a7c15ULL *
             static_cast<std::uint64_t>(device + 1)));

    // Draw order is part of the format: class, PCM mass, ambient,
    // then the scenario seed.
    double total = 0.0;
    for (const FleetDeviceClass &c : spec.classes)
        total += c.weight;
    const double x = rng.uniform() * total;
    std::size_t pick = 0;
    double cum = 0.0;
    for (std::size_t i = 0; i < spec.classes.size(); ++i) {
        cum += spec.classes[i].weight;
        if (x < cum) {
            pick = i;
            break;
        }
        pick = i; // rounding tail lands on the last class
    }
    const FleetDeviceClass &cls = spec.classes[pick];
    const Grams pcm = rng.uniform(cls.pcm_mass_lo, cls.pcm_mass_hi);
    const Celsius ambient = rng.uniform(cls.ambient_lo, cls.ambient_hi);

    ScenarioConfig cfg;
    cfg.platform = SprintConfig::parallelSprint(cls.cores, pcm,
                                                spec.time_scale);
    cfg.platform.package.ambient = ambient;
    cfg.policy.kind = cls.policy;
    cfg.policy.pacing_period = cls.pacing_period;
    cfg.policy.service_prior = cls.service_prior;
    cfg.pattern = cls.pattern;
    cfg.num_tasks = cls.num_tasks;
    cfg.period = cls.period;
    cfg.burst_size = cls.burst_size;
    cfg.burst_spacing = cls.burst_spacing;
    cfg.kernel = cls.kernel;
    cfg.size = cls.size;
    cfg.seed = rng.next();
    if (!cls.mix.empty())
        cfg.program_factory = makeWorkloadMixFactory(cls.mix);
    cfg.warm_caches = cls.warm_caches;
    cfg.hi_priority_fraction = cls.hi_priority_fraction;
    cfg.deadline_hi = cls.deadline_hi;
    cfg.deadline_lo = cls.deadline_lo;
    cfg.tail_rest = cls.tail_rest;
    // The fleet quantiles fold per-task response times.
    cfg.keep_task_results = true;
    return cfg;
}

Celsius
fleetDeviceThermalLimit(const FleetSpec &spec, const ScenarioConfig &cfg)
{
    if (spec.thermal_limit > 0.0)
        return spec.thermal_limit;
    return cfg.platform.package.t_junction_max;
}

std::uint32_t
fleetSpecDigest(const FleetSpec &spec)
{
    BlobWriter w;
    writeSpecBody(w, spec);
    return crc32(w.buffer().data(), w.buffer().size());
}

std::vector<std::uint8_t>
serializeFleetSpec(const FleetSpec &spec, const FaultPlan &plan,
                   const FleetOptions &opts)
{
    BlobWriter w;
    w.u32(kFleetSpecVersion);
    writeSpecBody(w, spec);
    w.vec(plan.faults, [](BlobWriter &w, const FaultSpec &f) {
        w.i64(f.shard);
        w.i64(static_cast<std::int64_t>(f.kind));
        w.u64(f.at_seq);
    });
    w.u64(opts.checkpoint_every_tasks);
    w.boolean(opts.paranoia);
    return BlobContainer::seal(kFleetFileDigest, w.take());
}

void
deserializeFleetSpec(const std::vector<std::uint8_t> &blob,
                     FleetSpec &spec, FaultPlan &plan,
                     FleetOptions &opts)
{
    BlobReader r = BlobContainer::open(blob, kFleetFileDigest);
    const std::uint32_t version = r.u32();
    if (version != kFleetSpecVersion)
        throw CheckpointError(CheckpointError::Kind::BadVersion,
                              "fleet spec format version " +
                                  std::to_string(version) +
                                  " is not readable by this build");
    spec = readSpecBody(r);
    plan.faults = r.vec<FaultSpec>(24, [](BlobReader &r) {
        FaultSpec f;
        f.shard = static_cast<int>(r.i64());
        f.kind = decodeEnum<FaultKind>(r.i64(), 7, "fault kind");
        f.at_seq = r.u64();
        return f;
    });
    opts.checkpoint_every_tasks = r.u64();
    opts.paranoia = r.boolean();
    r.expectEnd();
    validateFleetSpec(spec);
    if (opts.checkpoint_every_tasks == 0)
        throw CheckpointError(CheckpointError::Kind::Corrupt,
                              "fleet spec: checkpoint cadence is zero");
}

std::vector<std::pair<int, int>>
fleetShardRanges(int num_devices, int num_workers)
{
    if (num_devices < 1)
        throw std::invalid_argument("fleet needs at least one device");
    num_workers = std::max(1, std::min(num_workers, num_devices));
    std::vector<std::pair<int, int>> ranges;
    ranges.reserve(static_cast<std::size_t>(num_workers));
    const int base = num_devices / num_workers;
    const int extra = num_devices % num_workers;
    int begin = 0;
    for (int w = 0; w < num_workers; ++w) {
        const int len = base + (w < extra ? 1 : 0);
        ranges.emplace_back(begin, begin + len);
        begin += len;
    }
    return ranges;
}

// --- Mergeable aggregates -------------------------------------------

void
FleetAggregates::foldDevice(const ScenarioResult &r, Celsius limit)
{
    devices += 1;
    tasks_completed += r.tasks_completed;
    tasks_dropped += static_cast<std::uint64_t>(r.tasks_dropped);
    deadlines_met += static_cast<std::uint64_t>(r.deadlines_met);
    deadlines_missed += static_cast<std::uint64_t>(r.deadlines_missed);
    sprints_granted += static_cast<std::uint64_t>(r.sprints_granted);
    sprints_denied += static_cast<std::uint64_t>(r.sprints_denied);
    hardware_throttles +=
        static_cast<std::uint64_t>(r.hardware_throttles);
    melt_cycles += static_cast<std::uint64_t>(r.sprint_rest_cycles);
    if (r.peak_junction > limit)
        thermal_violations += 1;
    peak_junction = std::max(peak_junction, r.peak_junction);
    peak_melt = std::max(peak_melt, r.peak_melt_fraction);
    total_energy += r.total_energy;
    total_sprint_time += r.total_sprint_time;
    total_sprint_energy += r.total_sprint_energy;
    for (const ScenarioTaskResult &t : r.tasks) {
        response_p50.add(t.response);
        response_p95.add(t.response);
    }
}

void
FleetAggregates::foldDegradedDevice()
{
    devices += 1;
    degraded_devices += 1;
}

void
FleetAggregates::merge(const FleetAggregates &other)
{
    devices += other.devices;
    degraded_devices += other.degraded_devices;
    tasks_completed += other.tasks_completed;
    tasks_dropped += other.tasks_dropped;
    deadlines_met += other.deadlines_met;
    deadlines_missed += other.deadlines_missed;
    sprints_granted += other.sprints_granted;
    sprints_denied += other.sprints_denied;
    hardware_throttles += other.hardware_throttles;
    melt_cycles += other.melt_cycles;
    thermal_violations += other.thermal_violations;
    peak_junction = std::max(peak_junction, other.peak_junction);
    peak_melt = std::max(peak_melt, other.peak_melt);
    total_energy += other.total_energy;
    total_sprint_time += other.total_sprint_time;
    total_sprint_energy += other.total_sprint_energy;
    response_p50.merge(other.response_p50);
    response_p95.merge(other.response_p95);
}

double
FleetAggregates::deadlineSlo() const
{
    const std::uint64_t with = deadlines_met + deadlines_missed;
    if (with == 0)
        return 1.0;
    return static_cast<double>(deadlines_met) /
           static_cast<double>(with);
}

double
FleetAggregates::thermalViolationRate() const
{
    if (devices == 0)
        return 0.0;
    return static_cast<double>(thermal_violations) /
           static_cast<double>(devices);
}

std::vector<std::uint8_t>
serializeFleetAggregates(const FleetAggregates &agg,
                         std::uint32_t spec_digest)
{
    BlobWriter w;
    w.u32(kFleetAggVersion);
    w.u64(agg.devices);
    w.u64(agg.degraded_devices);
    w.u64(agg.tasks_completed);
    w.u64(agg.tasks_dropped);
    w.u64(agg.deadlines_met);
    w.u64(agg.deadlines_missed);
    w.u64(agg.sprints_granted);
    w.u64(agg.sprints_denied);
    w.u64(agg.hardware_throttles);
    w.u64(agg.melt_cycles);
    w.u64(agg.thermal_violations);
    w.f64(agg.peak_junction);
    w.f64(agg.peak_melt);
    w.f64(agg.total_energy);
    w.f64(agg.total_sprint_time);
    w.f64(agg.total_sprint_energy);
    double st[P2Quantile::kStateSize];
    agg.response_p50.save(st);
    for (double v : st)
        w.f64(v);
    agg.response_p95.save(st);
    for (double v : st)
        w.f64(v);
    return BlobContainer::seal(spec_digest, w.take());
}

FleetAggregates
deserializeFleetAggregates(const std::vector<std::uint8_t> &blob,
                           std::uint32_t spec_digest)
{
    BlobReader r = BlobContainer::open(blob, spec_digest);
    const std::uint32_t version = r.u32();
    if (version != kFleetAggVersion)
        throw CheckpointError(CheckpointError::Kind::BadVersion,
                              "fleet aggregate format version " +
                                  std::to_string(version) +
                                  " is not readable by this build");
    FleetAggregates agg;
    agg.devices = r.u64();
    agg.degraded_devices = r.u64();
    agg.tasks_completed = r.u64();
    agg.tasks_dropped = r.u64();
    agg.deadlines_met = r.u64();
    agg.deadlines_missed = r.u64();
    agg.sprints_granted = r.u64();
    agg.sprints_denied = r.u64();
    agg.hardware_throttles = r.u64();
    agg.melt_cycles = r.u64();
    agg.thermal_violations = r.u64();
    agg.peak_junction = r.f64();
    agg.peak_melt = r.f64();
    agg.total_energy = r.f64();
    agg.total_sprint_time = r.f64();
    agg.total_sprint_energy = r.f64();
    const auto restoreP2 = [&r](P2Quantile &q, double expect) {
        double st[P2Quantile::kStateSize];
        for (double &v : st)
            v = r.f64();
        if (st[0] != expect || !(st[1] >= 0.0) ||
            !std::isfinite(st[1]))
            throw CheckpointError(
                CheckpointError::Kind::Corrupt,
                "fleet aggregates: malformed quantile state");
        q.restore(st);
    };
    restoreP2(agg.response_p50, 0.50);
    restoreP2(agg.response_p95, 0.95);
    r.expectEnd();
    return agg;
}

bool
FleetResult::allOk() const
{
    for (const FleetWorkerStats &w : workers)
        if (w.degraded)
            return false;
    return true;
}

std::string
defaultFleetWorkerPath()
{
    if (const char *env = std::getenv("CSPRINT_FLEET_WORKER"))
        if (*env != '\0')
            return env;
    char exe[4096];
    const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    if (n > 0) {
        exe[n] = '\0';
        const std::string self(exe);
        const std::size_t slash = self.find_last_of('/');
        if (slash != std::string::npos) {
            const std::string sibling =
                self.substr(0, slash + 1) + "csprint-fleet-worker";
            if (::access(sibling.c_str(), X_OK) == 0)
                return sibling;
        }
    }
    return "csprint-fleet-worker";
}

// --- In-process transport -------------------------------------------

FleetResult
runFleetInProcess(const FleetSpec &spec, const FleetOptions &opts,
                  const FaultPlan &plan)
{
    validateFleetSpec(spec);
    if (opts.store_dir.empty())
        throw std::invalid_argument("FleetOptions::store_dir is required");

    std::vector<ScenarioConfig> cfgs;
    std::vector<Celsius> limits;
    cfgs.reserve(static_cast<std::size_t>(spec.num_devices));
    for (int d = 0; d < spec.num_devices; ++d) {
        cfgs.push_back(fleetDeviceConfig(spec, d));
        limits.push_back(fleetDeviceThermalLimit(spec, cfgs.back()));
    }

    SupervisorOptions sopts;
    sopts.checkpoint_every_tasks = opts.checkpoint_every_tasks;
    sopts.max_retries = opts.max_retries;
    sopts.backoff_initial = opts.backoff_initial;
    sopts.watchdog_deadline = opts.watchdog_deadline;
    sopts.store_dir = opts.store_dir;
    sopts.paranoia = opts.paranoia;
    SupervisedBatchResult batch =
        runSupervisedScenarioBatch(cfgs, sopts, plan);

    // The batch store is gone; this instance only reads (no locks).
    CheckpointStore reader(opts.store_dir);

    FleetResult res;
    res.devices.resize(static_cast<std::size_t>(spec.num_devices));
    const auto ranges =
        fleetShardRanges(spec.num_devices, opts.num_workers);
    for (const auto &range : ranges) {
        FleetAggregates ra;
        FleetWorkerStats ws;
        ws.range_begin = range.first;
        ws.range_end = range.second;
        for (int d = range.first; d < range.second; ++d) {
            ShardOutcome &o = batch.shards[static_cast<std::size_t>(d)];
            ws.respawns += o.retries;
            if (o.error && ws.last_error.empty()) {
                try {
                    std::rethrow_exception(o.error);
                } catch (const std::exception &e) {
                    ws.last_error = e.what();
                } catch (...) {
                    ws.last_error = "unknown error";
                }
            }
            if (o.degraded) {
                ws.degraded = true;
                ra.foldDegradedDevice();
                continue;
            }
            ra.foldDevice(o.result, limits[static_cast<std::size_t>(d)]);
            FleetDeviceOutcome &out =
                res.devices[static_cast<std::size_t>(d)];
            out.completed = true;
            const auto cands = reader.loadCandidates(d);
            if (!cands.empty())
                out.checkpoint_digest =
                    crc32(cands.front().blob.data(),
                          cands.front().blob.size());
            if (opts.keep_device_results)
                out.result = std::move(o.result);
        }
        res.aggregates.merge(ra);
        res.workers.push_back(std::move(ws));
    }
    return res;
}

// --- Worker process (csprint-fleet-worker) --------------------------

namespace {

std::vector<char>
parseFiredList(const std::string &csv, std::size_t num_faults)
{
    std::vector<char> fired(num_faults, 0);
    std::size_t pos = 0;
    while (pos < csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        const std::string tok = csv.substr(pos, comma - pos);
        if (!tok.empty()) {
            const unsigned long idx =
                std::strtoul(tok.c_str(), nullptr, 10);
            if (idx < num_faults)
                fired[idx] = 1;
        }
        pos = comma + 1;
    }
    return fired;
}

[[noreturn]] void
workerStallForever()
{
    for (;;)
        std::this_thread::sleep_for(std::chrono::seconds(3600));
}

} // namespace

int
fleetWorkerMain(int argc, char **argv)
{
    // The parent dying must surface as a write error, not SIGPIPE.
    ::signal(SIGPIPE, SIG_IGN);

    const ArgParser args(argc, argv,
                         {"spec", "store", "begin", "end", "fd",
                          "attempt", "fired"});
    const int out_fd = static_cast<int>(args.getInt("fd", 3));
    try {
        const std::string spec_path = args.get("spec", "");
        const std::string store_dir = args.get("store", "");
        const int begin = static_cast<int>(args.getInt("begin", 0));
        const int end = static_cast<int>(args.getInt("end", 0));
        const std::uint64_t attempt =
            static_cast<std::uint64_t>(args.getInt("attempt", 0));
        if (spec_path.empty() || store_dir.empty() || begin < 0 ||
            end <= begin)
            throw std::invalid_argument(
                "fleet worker: --spec/--store/--begin/--end required");

        FleetSpec spec;
        FaultPlan plan;
        FleetOptions wopts;
        deserializeFleetSpec(readFileBytes(spec_path), spec, plan,
                             wopts);
        if (end > spec.num_devices)
            throw std::invalid_argument(
                "fleet worker: range exceeds the device count");
        std::vector<char> fired =
            parseFiredList(args.get("fired", ""), plan.faults.size());

        sendFrameU64s(out_fd, kFrameHello,
                      {static_cast<std::uint64_t>(begin),
                       static_cast<std::uint64_t>(end), attempt});

        CheckpointStore store(store_dir);
        FleetAggregates agg;
        const std::uint32_t digest = fleetSpecDigest(spec);

        for (int device = begin; device < end; ++device) {
            const ScenarioConfig cfg = fleetDeviceConfig(spec, device);
            const Celsius limit = fleetDeviceThermalLimit(spec, cfg);

            const auto dueFault = [&](std::uint64_t seq,
                                      bool before) -> int {
                for (std::size_t i = 0; i < plan.faults.size(); ++i) {
                    const FaultSpec &f = plan.faults[i];
                    if (fired[i] || f.shard != device ||
                        f.at_seq != seq)
                        continue;
                    const bool fires_before =
                        f.kind == FaultKind::CrashAtCheckpoint;
                    if (fires_before != before)
                        continue;
                    return static_cast<int>(i);
                }
                return -1;
            };

            const ShardBeatFn beat = [&] {
                sendFrameU64s(out_fd, kFrameBeat,
                              {static_cast<std::uint64_t>(device)});
            };
            const ShardPersistHook beforePersist =
                [&](std::uint64_t seq) {
                    const int i = dueFault(seq, true);
                    if (i < 0)
                        return;
                    sendFrameU64s(out_fd, kFrameFaultFired,
                                  {static_cast<std::uint64_t>(i)});
                    ::_exit(12); // died before the checkpoint landed
                };
            const ShardPersistHook afterPersist =
                [&](std::uint64_t seq) {
                    const int i = dueFault(seq, false);
                    if (i < 0)
                        return;
                    sendFrameU64s(out_fd, kFrameFaultFired,
                                  {static_cast<std::uint64_t>(i)});
                    switch (plan.faults[static_cast<std::size_t>(i)]
                                .kind) {
                    case FaultKind::BitFlip:
                        faultFlipBitInFile(
                            store.checkpointPath(device, seq));
                        ::_exit(13);
                    case FaultKind::Truncate:
                        faultTruncateFile(
                            store.checkpointPath(device, seq));
                        ::_exit(13);
                    case FaultKind::WorkerException: {
                        const std::string msg =
                            "injected worker exception";
                        sendFrame(out_fd, kFrameError,
                                  {msg.begin(), msg.end()});
                        ::_exit(14);
                    }
                    case FaultKind::Stall:
                    case FaultKind::StallWorker:
                        workerStallForever();
                    case FaultKind::KillWorker:
                        ::kill(::getpid(), SIGKILL);
                        workerStallForever(); // unreachable
                    case FaultKind::CorruptPipe: {
                        const std::vector<std::uint8_t> junk(32, 0xa5);
                        writeAll(out_fd, junk.data(), junk.size());
                        ::_exit(15);
                    }
                    case FaultKind::CrashAtCheckpoint:
                        break; // fires before the persist, not here
                    }
                };

            ShardProgress progress;
            std::vector<std::uint8_t> final_blob;
            const ScenarioResult result = runShardToCompletion(
                cfg, device, store, wopts.checkpoint_every_tasks,
                wopts.paranoia, beat, beforePersist, afterPersist,
                progress, &final_blob);

            std::vector<std::uint8_t> payload(8 + final_blob.size());
            writeLe64(payload.data(),
                      static_cast<std::uint64_t>(device));
            std::memcpy(payload.data() + 8, final_blob.data(),
                        final_blob.size());
            sendFrame(out_fd, kFrameDeviceDone, payload);

            agg.foldDevice(result, limit);
        }

        sendFrame(out_fd, kFrameRangeDone,
                  serializeFleetAggregates(agg, digest));
        return 0;
    } catch (const std::exception &e) {
        const std::string msg = e.what();
        sendFrame(out_fd, kFrameError, {msg.begin(), msg.end()});
        return 3;
    }
}

// --- Multi-process transport ----------------------------------------

namespace {

using Clock = std::chrono::steady_clock;

struct WorkerProc
{
    int begin = 0;
    int end = 0;
    pid_t pid = -1;
    int fd = -1;
    std::vector<std::uint8_t> buf;
    Clock::time_point last_frame;
    int respawns = 0;
    bool active = false;
    bool finished = false;
    bool degraded = false;
    bool got_range_done = false;
    std::vector<std::uint8_t> range_agg;
    std::string last_error;
};

} // namespace

FleetResult
runFleetMultiProcess(const FleetSpec &spec, const FleetOptions &opts,
                     const FaultPlan &plan)
{
    validateFleetSpec(spec);
    if (opts.store_dir.empty())
        throw std::invalid_argument("FleetOptions::store_dir is required");

    const std::string worker_path = opts.worker_path.empty()
                                        ? defaultFleetWorkerPath()
                                        : opts.worker_path;
    if (::access(worker_path.c_str(), X_OK) != 0)
        throw CheckpointError(
            CheckpointError::Kind::Io,
            "fleet worker binary not executable: " + worker_path +
                " (build csprint-fleet-worker or set "
                "CSPRINT_FLEET_WORKER)");

    std::error_code ec;
    std::filesystem::create_directories(opts.store_dir, ec);
    if (ec)
        throw CheckpointError(CheckpointError::Kind::Io,
                              "cannot create store directory " +
                                  opts.store_dir + ": " + ec.message());
    const std::string spec_path = opts.store_dir + "/fleet.spec";
    writeFileBytes(spec_path, serializeFleetSpec(spec, plan, opts));

    const std::uint32_t digest = fleetSpecDigest(spec);
    const auto ranges =
        fleetShardRanges(spec.num_devices, opts.num_workers);

    std::vector<char> fired(plan.faults.size(), 0);
    std::unordered_map<int, std::vector<std::uint8_t>> device_blobs;

    std::vector<WorkerProc> procs(ranges.size());
    for (std::size_t i = 0; i < ranges.size(); ++i) {
        procs[i].begin = ranges[i].first;
        procs[i].end = ranges[i].second;
    }

    const auto firedCsv = [&]() {
        std::string csv;
        for (std::size_t i = 0; i < fired.size(); ++i) {
            if (!fired[i])
                continue;
            if (!csv.empty())
                csv += ',';
            csv += std::to_string(i);
        }
        return csv;
    };

    const auto spawn = [&](WorkerProc &p) {
        std::vector<std::string> sargs = {
            worker_path,
            "--spec", spec_path,
            "--store", opts.store_dir,
            "--begin", std::to_string(p.begin),
            "--end", std::to_string(p.end),
            "--fd", "3",
            "--attempt", std::to_string(p.respawns),
        };
        const std::string csv = firedCsv();
        if (!csv.empty()) {
            sargs.push_back("--fired");
            sargs.push_back(csv);
        }

        int fds[2];
        if (::pipe(fds) != 0)
            throwIo("cannot create worker pipe");
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(fds[0]);
            ::close(fds[1]);
            throwIo("cannot fork fleet worker");
        }
        if (pid == 0) {
            // Move the read end off fd 3 first: pipe() hands out the
            // lowest free fds, and closing it after the dup2 below
            // would tear down the freshly-installed write end.
            if (fds[0] == 3) {
                fds[0] = ::dup(fds[0]);
                ::close(3);
            }
            ::dup2(fds[1], 3);
            if (fds[1] != 3)
                ::close(fds[1]);
            ::close(fds[0]);
            std::vector<char *> cargv;
            cargv.reserve(sargs.size() + 1);
            for (const std::string &s : sargs)
                cargv.push_back(const_cast<char *>(s.c_str()));
            cargv.push_back(nullptr);
            ::execv(worker_path.c_str(), cargv.data());
            ::_exit(127);
        }
        ::close(fds[1]);
        ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
        ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
        p.pid = pid;
        p.fd = fds[0];
        p.buf.clear();
        p.got_range_done = false;
        p.range_agg.clear();
        p.active = true;
        p.last_frame = Clock::now();
    };

    const auto killAndReap = [](WorkerProc &p) {
        if (p.pid > 0) {
            ::kill(p.pid, SIGKILL);
            int st = 0;
            ::waitpid(p.pid, &st, 0);
            p.pid = -1;
        }
        if (p.fd >= 0) {
            ::close(p.fd);
            p.fd = -1;
        }
    };

    // Declared before use in failProc via std::function (recursion-free).
    const auto failProc = [&](WorkerProc &p, const std::string &why) {
        p.last_error = why;
        killAndReap(p);
        if (p.respawns >= opts.max_retries) {
            p.degraded = true;
            p.active = false;
            return;
        }
        ++p.respawns;
        const double s =
            retryBackoffSeconds(opts.backoff_initial, p.respawns);
        if (s > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double>(s));
        spawn(p);
    };

    // Returns false when the frame stream is corrupt.
    const auto processFrames = [&](WorkerProc &p) -> bool {
        ParsedFrame f;
        for (;;) {
            const int rc = tryParseFrame(p.buf, f);
            if (rc == 0)
                return true;
            if (rc < 0)
                return false;
            p.last_frame = Clock::now();
            switch (f.type) {
            case kFrameHello:
            case kFrameBeat:
                break;
            case kFrameFaultFired: {
                if (f.payload.size() != 8)
                    return false;
                const std::uint64_t idx = readLe64(f.payload.data());
                if (idx < fired.size())
                    fired[static_cast<std::size_t>(idx)] = 1;
                break;
            }
            case kFrameDeviceDone: {
                if (f.payload.size() < 8)
                    return false;
                const std::uint64_t device =
                    readLe64(f.payload.data());
                if (device < static_cast<std::uint64_t>(p.begin) ||
                    device >= static_cast<std::uint64_t>(p.end))
                    return false;
                device_blobs[static_cast<int>(device)].assign(
                    f.payload.begin() + 8, f.payload.end());
                break;
            }
            case kFrameRangeDone:
                p.range_agg = f.payload;
                p.got_range_done = true;
                break;
            case kFrameError:
                p.last_error.assign(f.payload.begin(),
                                    f.payload.end());
                break;
            default:
                return false;
            }
        }
    };

    for (WorkerProc &p : procs)
        spawn(p);

    for (;;) {
        std::vector<pollfd> pfds;
        std::vector<std::size_t> owner;
        for (std::size_t i = 0; i < procs.size(); ++i) {
            if (!procs[i].active)
                continue;
            pfds.push_back({procs[i].fd, POLLIN, 0});
            owner.push_back(i);
        }
        if (pfds.empty())
            break;
        ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 5);

        for (std::size_t k = 0; k < pfds.size(); ++k) {
            WorkerProc &p = procs[owner[k]];
            if (!p.active)
                continue;
            if (!(pfds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            bool eof = false;
            for (;;) {
                std::uint8_t tmp[65536];
                const ssize_t n = ::read(p.fd, tmp, sizeof(tmp));
                if (n > 0) {
                    p.buf.insert(p.buf.end(), tmp, tmp + n);
                    continue;
                }
                if (n == 0) {
                    eof = true;
                    break;
                }
                if (errno == EINTR)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    break;
                eof = true;
                break;
            }
            if (!processFrames(p)) {
                failProc(p, "corrupt frame on the result pipe");
                continue;
            }
            if (!eof)
                continue;
            int st = 0;
            ::waitpid(p.pid, &st, 0);
            p.pid = -1;
            ::close(p.fd);
            p.fd = -1;
            if (p.got_range_done && WIFEXITED(st) &&
                WEXITSTATUS(st) == 0) {
                p.finished = true;
                p.active = false;
            } else if (WIFSIGNALED(st)) {
                failProc(p, std::string("worker killed by signal ") +
                                std::to_string(WTERMSIG(st)));
            } else {
                failProc(p,
                         std::string("worker exited with status ") +
                             std::to_string(WIFEXITED(st)
                                                ? WEXITSTATUS(st)
                                                : -1) +
                             (p.last_error.empty()
                                  ? std::string()
                                  : ": " + p.last_error));
            }
        }

        const Clock::time_point now = Clock::now();
        for (WorkerProc &p : procs) {
            if (!p.active)
                continue;
            const double idle =
                std::chrono::duration<double>(now - p.last_frame)
                    .count();
            if (idle > opts.watchdog_deadline)
                failProc(p, "watchdog: worker sent no frames for " +
                                std::to_string(idle) + " s");
        }
    }

    // --- Assemble the result ----------------------------------------

    // Finish every received final checkpoint once; reused for both
    // outcomes and degraded-range reconstruction.
    std::unordered_map<int, ScenarioResult> finished;
    std::vector<ScenarioConfig> cfgs(
        static_cast<std::size_t>(spec.num_devices));
    std::vector<char> have_cfg(
        static_cast<std::size_t>(spec.num_devices), 0);
    const auto configOf = [&](int d) -> const ScenarioConfig & {
        if (!have_cfg[static_cast<std::size_t>(d)]) {
            cfgs[static_cast<std::size_t>(d)] =
                fleetDeviceConfig(spec, d);
            have_cfg[static_cast<std::size_t>(d)] = 1;
        }
        return cfgs[static_cast<std::size_t>(d)];
    };
    for (auto &entry : device_blobs) {
        try {
            ScenarioCheckpoint ck =
                deserializeCheckpoint(configOf(entry.first),
                                      entry.second);
            if (!ck.done)
                continue;
            finished.emplace(entry.first,
                             finishScenario(configOf(entry.first),
                                            std::move(ck)));
        } catch (const CheckpointError &) {
            // An unreadable blob is treated as never received.
        }
    }

    FleetResult res;
    res.devices.resize(static_cast<std::size_t>(spec.num_devices));
    for (WorkerProc &p : procs) {
        FleetAggregates ra;
        FleetWorkerStats ws;
        ws.range_begin = p.begin;
        ws.range_end = p.end;
        ws.respawns = p.respawns;
        ws.degraded = p.degraded;
        ws.last_error = p.last_error;
        if (p.finished) {
            ra = deserializeFleetAggregates(p.range_agg, digest);
        } else {
            // Degraded range: devices whose final checkpoints were
            // received still count; the rest degrade, not drop.
            for (int d = p.begin; d < p.end; ++d) {
                const auto it = finished.find(d);
                if (it == finished.end()) {
                    ra.foldDegradedDevice();
                    continue;
                }
                ra.foldDevice(it->second,
                              fleetDeviceThermalLimit(spec,
                                                      configOf(d)));
            }
        }
        res.aggregates.merge(ra);
        res.workers.push_back(std::move(ws));
    }
    for (auto &entry : device_blobs) {
        const auto it = finished.find(entry.first);
        if (it == finished.end())
            continue;
        FleetDeviceOutcome &out =
            res.devices[static_cast<std::size_t>(entry.first)];
        out.completed = true;
        out.checkpoint_digest =
            crc32(entry.second.data(), entry.second.size());
        if (opts.keep_device_results)
            out.result = std::move(it->second);
    }
    return res;
}

} // namespace csprint
