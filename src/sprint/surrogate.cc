#include "sprint/surrogate.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace csprint {

const char *
fidelityTierName(FidelityTier tier)
{
    switch (tier) {
      case FidelityTier::CycleAccurate:
        return "cycle-accurate";
      case FidelityTier::Surrogate:
        return "surrogate";
      case FidelityTier::Auto:
        return "auto";
    }
    SPRINT_PANIC("unknown fidelity tier");
}

void
validateSurrogateParams(const SurrogateParams &p)
{
    if (p.tier == FidelityTier::CycleAccurate)
        return;
    SPRINT_ASSERT(p.min_calibration >= 1,
                  "surrogate tier needs at least one calibration task");
    SPRINT_ASSERT(p.audit_period >= 1.0,
                  "audit period must be at least one dispatch");
    SPRINT_ASSERT(p.tolerance > 0.0,
                  "audit tolerance must be positive");
    SPRINT_ASSERT(p.profile_samples >= 1,
                  "heat profile needs at least one chunk");
}

void
SurrogateClassModel::observe(const SurrogateObservation &ob)
{
    ++n;
    const double dn = static_cast<double>(n);

    // Long-run Welford moments.
    const double ds = ob.service - service_mean;
    service_mean += ds / dn;
    service_m2 += ds * (ob.service - service_mean);
    const double de = ob.energy - energy_mean;
    energy_mean += de / dn;
    energy_m2 += de * (ob.energy - energy_mean);

    // Drift-following prediction means: exact average while young,
    // EWMA once enough samples exist to damp the noise.
    const double a = std::max(1.0 / dn, kSurrogateAlpha);
    ewma_service += a * (ob.service - ewma_service);
    ewma_energy += a * (ob.energy - ewma_energy);
    ewma_sprint_time += a * (ob.sprint_time - ewma_sprint_time);
    ewma_sprint_energy += a * (ob.sprint_energy - ewma_sprint_energy);
    ewma_heat_time += a * (ob.heat_time - ewma_heat_time);
    ewma_heat_energy += a * (ob.heat_energy - ewma_heat_energy);
    exhausted_ewma +=
        a * ((ob.sprint_exhausted ? 1.0 : 0.0) - exhausted_ewma);
    throttled_ewma +=
        a * ((ob.hardware_throttled ? 1.0 : 0.0) - throttled_ewma);

    service_p95.add(ob.service);
}

SurrogatePrediction
SurrogateClassModel::predict() const
{
    SPRINT_ASSERT(n >= 1, "prediction from an uncalibrated class");
    SurrogatePrediction p;
    p.service = std::max(ewma_service, 0.0);
    p.energy = std::max(ewma_energy, 0.0);
    // The heat envelope covers the hook-sampled quanta only, and the
    // sprint segment can never exceed it.
    p.heat_time = std::clamp(ewma_heat_time, 0.0, p.service);
    p.heat_energy = std::clamp(ewma_heat_energy, 0.0, p.energy);
    p.sprint_time = std::clamp(ewma_sprint_time, 0.0, p.heat_time);
    p.sprint_energy = std::clamp(ewma_sprint_energy, 0.0, p.heat_energy);
    p.service_p95 = service_p95.value();
    p.sprint_exhausted = exhausted_ewma >= 0.5;
    p.hardware_throttled = throttled_ewma >= 0.5;
    return p;
}

TaskSurrogate::Route
TaskSurrogate::route(std::uint32_t key, const SurrogateParams &params)
{
    SurrogateClassModel &m = classes_[key];
    if (m.demoted ||
        m.n < static_cast<std::uint64_t>(params.min_calibration))
        return Route::Exact;
    if (params.tier == FidelityTier::Auto) {
        // One draw per calibrated dispatch: audit with probability
        // 1/audit_period. Deterministic given the dispatch sequence.
        const double u = audit_rng_.uniform();
        if (u * params.audit_period < 1.0) {
            ++m.audits;
            ++audit_tasks_;
            return Route::Audit;
        }
    }
    ++m.surrogate_runs;
    ++surrogate_tasks_;
    return Route::Surrogate;
}

SurrogatePrediction
TaskSurrogate::predict(std::uint32_t key) const
{
    const auto it = classes_.find(key);
    SPRINT_ASSERT(it != classes_.end(),
                  "prediction for a class never observed");
    return it->second.predict();
}

void
TaskSurrogate::observeExact(std::uint32_t key,
                            const SurrogateObservation &ob)
{
    classes_[key].observe(ob);
}

namespace {

double
relativeError(double predicted, double actual)
{
    const double scale = std::max(std::abs(actual), 1e-300);
    return std::abs(predicted - actual) / scale;
}

} // namespace

void
TaskSurrogate::finishAudit(std::uint32_t key,
                           const SurrogatePrediction &pred,
                           const SurrogateObservation &truth,
                           const SurrogateParams &params)
{
    SurrogateClassModel &m = classes_.at(key);
    const double err =
        std::max(relativeError(pred.service, truth.service),
                 relativeError(pred.energy, truth.energy));
    m.worst_audit_error = std::max(m.worst_audit_error, err);
    if (err > params.tolerance && !m.demoted) {
        m.demoted = true;
        ++demotions_;
    }
}

} // namespace csprint
