#include "sprint/simulation.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace csprint {

MobilePackageParams
SprintConfig::scaledPackage(Grams pcm_mass, double time_scale)
{
    SPRINT_ASSERT(time_scale > 0.0, "bad time scale");
    MobilePackageParams p = MobilePackageParams::phonePcm(pcm_mass);
    p.c_junction *= time_scale;
    p.c_case *= time_scale;
    p.pcm_mass *= time_scale;
    return p;
}

SprintConfig
SprintConfig::parallelSprint(int cores, Grams pcm_mass,
                             double time_scale)
{
    SprintConfig cfg;
    cfg.sprint_cores = cores;
    cfg.num_threads = cores;
    cfg.dvfs_boost = 1.0;
    cfg.package = scaledPackage(pcm_mass, time_scale);
    // The physical ramp is 128 us; in the time-scaled universe the
    // equivalent delay shrinks with the same factor as the thermal
    // transients and the workload (paper Section 5.3: the ramp is
    // negligible against the sprint duration).
    cfg.activation_ramp = 128e-6 * time_scale;
    cfg.machine = MachineConfig();
    cfg.machine.num_cores = cores;
    cfg.machine.num_threads = cores;
    return cfg;
}

SprintConfig
SprintConfig::dvfsSprint(double power_headroom, Grams pcm_mass,
                         double time_scale)
{
    SprintConfig cfg;
    cfg.sprint_cores = 1;
    cfg.num_threads = 1;
    cfg.dvfs_boost = dvfsBoostFromHeadroom(power_headroom);
    cfg.package = scaledPackage(pcm_mass, time_scale);
    // A voltage ramp rather than a core-activation ramp; same scaled
    // order of magnitude.
    cfg.activation_ramp = 128e-6 * time_scale;
    cfg.machine = MachineConfig();
    cfg.machine.num_cores = 1;
    cfg.machine.num_threads = 1;
    cfg.machine.freq_mult = cfg.dvfs_boost;
    cfg.machine.energy =
        InstructionEnergyModel().boosted(cfg.dvfs_boost);
    return cfg;
}

SprintConfig
SprintConfig::baseline()
{
    SprintConfig cfg;
    cfg.sprint_cores = 1;
    cfg.num_threads = 1;
    cfg.activation_ramp = 0.0;
    // The baseline never exceeds TDP, so the package barely matters;
    // use the unscaled no-PCM package.
    cfg.package = MobilePackageParams::phoneNoPcm();
    cfg.machine = MachineConfig();
    cfg.machine.num_cores = 1;
    cfg.machine.num_threads = 1;
    return cfg;
}

MachineConfig
SprintConfig::machineConfig() const
{
    SPRINT_ASSERT(sprint_cores >= 1, "need at least one core");
    MachineConfig mcfg = machine;
    mcfg.num_cores = sprint_cores;
    mcfg.num_threads = num_threads;
    if (dvfs_boost != 1.0) {
        // The dvfsSprint factory wired the boost into the machine
        // template; re-deriving it here would be a second source of
        // truth, so verify instead. The boosted energy model scales
        // its tech clock with the boost, which is the observable that
        // distinguishes a boosted model from the nominal one.
        SPRINT_ASSERT(mcfg.freq_mult == dvfs_boost,
                      "dvfs_boost set but machine.freq_mult not wired "
                      "by the config factory");
        SPRINT_ASSERT(std::abs(mcfg.energy.tech().clock -
                               dvfs_boost * mcfg.nominal_clock) <=
                          1e-9 * mcfg.nominal_clock,
                      "dvfs_boost set but machine.energy not boosted "
                      "by the config factory");
    }
    return mcfg;
}

std::unique_ptr<Machine>
prepareMachine(const ParallelProgram &program, const SprintConfig &cfg)
{
    return std::make_unique<Machine>(cfg.machineConfig(), program);
}

void
pumpTaskSlice(Machine &machine, const SprintConfig &cfg,
              MobilePackageModel &package, SprintPolicy &policy,
              PumpState &st, const PumpObserver &observe)
{
    const Watts sustainable = package.sustainableTdp();
    const bool is_sprinting_config =
        cfg.sprint_cores > 1 || cfg.dvfs_boost > 1.0;

    // The hook stays installed on the machine across slices; capture
    // the observer by value so a caller's temporary cannot dangle.
    machine.setSampleHook(
        [&, observe](Machine &m, Seconds dt, Joules energy) {
            st.elapsed += dt;
            const Watts power = energy / dt;
            // Traces record the pre-sample thermal state; the policy
            // advances the package below (see policy.hh's contract).
            const Celsius junction = package.junctionTemp();
            const double melt = package.meltFraction();
            st.junction_trace.add(st.elapsed, junction);
            st.power_trace.add(st.elapsed, power);
            st.melt_trace.add(st.elapsed, melt);
            if (power > sustainable) {
                st.above_tdp_time += dt;
                st.above_tdp_energy += energy;
            }
            st.sampled_time += dt;
            st.sampled_energy += energy;

            const SprintDecision decision =
                policy.onSample(package, dt, energy);
            st.peak_junction =
                std::max(st.peak_junction, package.junctionTemp());
            if (decision == SprintDecision::Throttle)
                st.policy_throttled = true;
            // The baseline config never reconfigures the machine.
            if (is_sprinting_config) {
                switch (decision) {
                  case SprintDecision::Continue:
                    break;
                  case SprintDecision::StopSprint:
                    st.sprint_exhausted = true;
                    if (cfg.software_migration_fails)
                        break;  // OS hung: leave it to the throttle
                    if (cfg.dvfs_boost > 1.0) {
                        m.setFrequencyMult(1.0);
                        m.setEnergyModel(InstructionEnergyModel());
                    } else {
                        m.consolidateToSingleCore();
                    }
                    break;
                  case SprintDecision::Throttle:
                    st.hardware_throttled = true;
                    // Throttle frequency by at least the number of
                    // active cores so dynamic power falls below TDP
                    // (Section 7).
                    m.setFrequencyMult(
                        std::min(1.0, 1.0 / m.activeCores()) /
                        std::max(1.0, cfg.dvfs_boost));
                    m.setEnergyModel(InstructionEnergyModel());
                    break;
                }
            }
            if (observe && observe(st.elapsed, junction, power, melt))
                m.suspend();
        },
        1000);  // the paper samples energy every 1000 cycles

    if (machine.suspended())
        machine.resume();
    else
        machine.run();
    // The lambda above references this call's stack frame (and the
    // caller's package/policy); a suspended machine can be parked
    // long past both, so drop the hook — the next slice installs a
    // fresh one before running.
    if (machine.suspended())
        machine.setSampleHook(nullptr);
}

RunResult
finalizePump(PumpState &&st, Machine &machine, const SprintConfig &cfg,
             MobilePackageModel &package)
{
    RunResult result;
    result.sprint_cores = cfg.sprint_cores;
    result.num_threads = cfg.num_threads;
    result.dvfs_boost = cfg.dvfs_boost;
    result.task_time = st.ramp_time + machine.simTime();
    result.machine = machine.stats();
    result.dynamic_energy = machine.stats().dynamic_energy;
    result.peak_junction = st.peak_junction;
    result.final_melt_fraction = package.meltFraction();
    result.sprint_exhausted = st.sprint_exhausted;
    result.sprint_duration = st.above_tdp_time;
    result.sprint_energy = st.above_tdp_energy;
    result.sampled_time = st.sampled_time;
    result.sampled_energy = st.sampled_energy;
    result.avg_power =
        result.task_time > 0.0 ? result.dynamic_energy / result.task_time
                               : 0.0;
    if (st.above_tdp_time > 0.0) {
        result.cooldown_estimate = package.approxCooldown(
            st.above_tdp_time, st.above_tdp_energy / st.above_tdp_time);
    }
    result.hardware_throttled =
        st.hardware_throttled || st.policy_throttled;
    result.junction_trace = std::move(st.junction_trace);
    result.power_trace = std::move(st.power_trace);
    result.melt_trace = std::move(st.melt_trace);
    return result;
}

RunResult
samplePumpObserved(Machine &machine, const SprintConfig &cfg,
                   MobilePackageModel &package, SprintPolicy &policy,
                   const PumpObserver &observe, Seconds start_time)
{
    PumpState st;
    st.elapsed = start_time + cfg.activation_ramp;
    st.ramp_time = cfg.activation_ramp;
    st.peak_junction = package.junctionTemp();
    do {
        pumpTaskSlice(machine, cfg, package, policy, st, observe);
        // suspended() distinguishes an observer pause (resume and
        // carry on) from completion or an abort() (stop either way).
    } while (machine.suspended());
    return finalizePump(std::move(st), machine, cfg, package);
}

RunResult
samplePump(Machine &machine, const SprintConfig &cfg,
           MobilePackageModel &package, SprintPolicy &policy,
           Seconds start_time)
{
    return samplePumpObserved(machine, cfg, package, policy, nullptr,
                              start_time);
}

RunResult
runSprint(const ParallelProgram &program, const SprintConfig &cfg)
{
    std::unique_ptr<Machine> machine = prepareMachine(program, cfg);
    MobilePackageModel package(cfg.package);
    package.reset();

    // The activation ramp heats nothing appreciable (cores are still
    // power-gated) but delays the start of useful computation.
    package.step(cfg.activation_ramp);

    // The seed decision logic as a policy: activity budget by
    // default, thermometer ground truth when the governor config asks
    // for it.
    std::unique_ptr<SprintPolicy> policy;
    if (cfg.governor.use_activity_estimate)
        policy = std::make_unique<GreedyActivityPolicy>(cfg.governor);
    else
        policy = std::make_unique<ThermometerPolicy>(cfg.governor);
    policy->beginTask(package);

    RunResult result = samplePump(*machine, cfg, package, *policy);
    result.program_name = program.name();
    return result;
}

} // namespace csprint
