/**
 * @file
 * Experiment drivers for the paper's evaluation figures: run a kernel
 * under the standard configurations (single-core baseline, N-core
 * parallel sprint, idealized DVFS sprint) and report speedup and
 * normalized dynamic energy. PCM masses are quoted in paper-equivalent
 * grams; EXPERIMENTS.md documents the time scaling.
 */

#ifndef CSPRINT_SPRINT_EXPERIMENT_HH
#define CSPRINT_SPRINT_EXPERIMENT_HH

#include <cstdint>

#include "sprint/simulation.hh"
#include "workloads/workload.hh"

namespace csprint {

/** The paper's two thermal design points (Figure 7): PCM mass [g]. */
constexpr Grams kFullPcm = 0.150;   ///< "150 mg" full provisioning
constexpr Grams kSmallPcm = 0.0015; ///< "1.5 mg" reduced design point

/** The paper's 16x power headroom for DVFS comparisons. */
constexpr double kPowerHeadroom = 16.0;

/** One experiment request. */
struct ExperimentSpec
{
    KernelId kernel = KernelId::Sobel;
    InputSize size = InputSize::B;
    int cores = 16;                ///< sprint width (threads = cores)
    Grams pcm_mass = kFullPcm;     ///< paper-equivalent PCM mass
    double time_scale = kDefaultTimeScale; ///< capacitance scaling
    double bandwidth_mult = 1.0;   ///< memory-bandwidth multiplier
    /**
     * LLC capacity multiplier. The paper's megapixel frames dwarf the
     * 4 MB LLC; our scaled frames do not. Scaling the LLC with the
     * inputs restores the paper's working-set : cache ratio (used by
     * the LLC-scaling ablation; 1.0 keeps the paper configuration).
     */
    double l2_scale = 1.0;
    std::uint64_t seed = 42;
    /**
     * Scheduler loop for the architectural simulator. EventDriven is
     * the production path; Reference retains the cycle-by-cycle seed
     * loop for parity measurement (bench/archsim_report.cc and the
     * machine-determinism tests hold the two bit-identical).
     */
    MachineLoop loop = MachineLoop::EventDriven;
    /**
     * Host threads sharding the event loop's boundary work
     * (MachineConfig::dispatch_threads); results are bit-identical
     * for every value. 1 keeps the serial pump.
     */
    int dispatch_threads = 1;
    /**
     * Reusable fork/join gang for the dispatch shards
     * (MachineConfig::dispatch_gang); the ExperimentRunner wires one
     * per pool worker so batched runs don't spawn threads per
     * machine. Null with dispatch_threads > 1 spawns per machine.
     */
    WorkerGang *dispatch_gang = nullptr;
};

/** Single-core non-sprint baseline for @p spec's kernel and input. */
RunResult runBaselineExperiment(const ExperimentSpec &spec);

/** N-core parallel sprint. */
RunResult runParallelSprintExperiment(const ExperimentSpec &spec);

/** Idealized single-core DVFS sprint with 16x headroom. */
RunResult runDvfsSprintExperiment(const ExperimentSpec &spec);

/** Response-time speedup of @p run over @p baseline. */
double speedupOver(const RunResult &baseline, const RunResult &run);

/** Dynamic energy of @p run normalized to @p baseline. */
double energyRatio(const RunResult &baseline, const RunResult &run);

} // namespace csprint

#endif // CSPRINT_SPRINT_EXPERIMENT_HH
