/**
 * @file
 * The coupled sprint simulation (paper Section 8): the architectural
 * simulator's per-1000-cycle dynamic-energy samples drive the package
 * thermal model and a SprintPolicy; policy decisions feed back into
 * the machine (thread migration to a single core, or the hardware
 * frequency throttle).
 *
 * The run is decomposed into reusable pieces so the Scenario engine
 * (sprint/scenario.hh) can re-invoke the machine per task against one
 * persistent package: prepareMachine() builds the machine from the
 * validated SprintConfig, samplePump() drives it to completion under a
 * policy, and runSprint() is the classic one-shot composition (cold
 * package, greedy/thermometer policy per the GovernorConfig).
 *
 * Sample boundaries are scheduler events of the machine's event-driven
 * loop (see PERF.md, "The machine hot path"): the machine stops at
 * every multiple of the sampling quantum with all energy tallies
 * priced, so the trace a hook observes is identical whichever
 * MachineLoop the SprintConfig's machine template selects.
 */

#ifndef CSPRINT_SPRINT_SIMULATION_HH
#define CSPRINT_SPRINT_SIMULATION_HH

#include <functional>
#include <memory>
#include <string>

#include "archsim/machine.hh"
#include "archsim/program.hh"
#include "common/timeseries.hh"
#include "common/units.hh"
#include "sprint/governor.hh"
#include "sprint/policy.hh"
#include "thermal/package.hh"

namespace csprint {

/**
 * Default capacitance time scaling matching the scaled-down workload
 * inputs (see SprintConfig::scaledPackage and DESIGN.md,
 * Substitutions).
 */
constexpr double kDefaultTimeScale = 7e-4;

/** A complete sprint-platform configuration. */
struct SprintConfig
{
    int sprint_cores = 16;          ///< cores activated for the sprint
    int num_threads = 16;           ///< software threads
    double dvfs_boost = 1.0;        ///< >1: single-core DVFS sprint
    Seconds activation_ramp = 128e-6; ///< gradual activation (Section 5)
    MobilePackageParams package;    ///< thermal package (time-scaled)
    GovernorConfig governor;
    MachineConfig machine;          ///< cores/caches/memory template
    bool software_migration_fails = false; ///< fault injection: force
                                           ///< the hardware throttle
    /**
     * Scale all thermal capacitances by @p time_scale to match the
     * scaled-down workload inputs (see DESIGN.md, Substitutions; the
     * paper itself scales its PCM 100x for the same reason). Thermal
     * resistances are untouched, so TDP and steady state are
     * preserved while transients shrink by the same factor as the
     * simulated work.
     */
    static MobilePackageParams scaledPackage(Grams pcm_mass,
                                             double time_scale);

    /** Parallel sprint with @p cores cores (paper default 16). */
    static SprintConfig parallelSprint(
        int cores, Grams pcm_mass,
        double time_scale = kDefaultTimeScale);

    /** Idealized single-core DVFS sprint with 16x power headroom. */
    static SprintConfig dvfsSprint(
        double power_headroom, Grams pcm_mass,
        double time_scale = kDefaultTimeScale);

    /** Non-sprint single-core baseline (same TDP, LLC, memory). */
    static SprintConfig baseline();

    /**
     * The machine configuration this platform runs: the template with
     * the core/thread counts applied. The factories above are the
     * single source of truth for DVFS boost wiring (freq_mult and the
     * boosted energy model); a boosted config that was not wired that
     * way is an assertion failure, not silently re-derived.
     */
    MachineConfig machineConfig() const;
};

/** Outcome of one coupled run. */
struct RunResult
{
    std::string program_name;
    int sprint_cores = 1;
    int num_threads = 1;
    double dvfs_boost = 1.0;

    Seconds task_time = 0.0;       ///< response time incl. activation
    Joules dynamic_energy = 0.0;   ///< total dynamic energy
    Celsius peak_junction = 0.0;   ///< max junction temperature
    double final_melt_fraction = 0.0;
    bool sprint_exhausted = false; ///< policy ended the sprint early
    bool hardware_throttled = false;
    Seconds sprint_duration = 0.0; ///< time spent above nominal TDP
    Joules sprint_energy = 0.0;    ///< energy spent above nominal TDP
    Seconds cooldown_estimate = 0.0; ///< Section 4.5 approximation
    Watts avg_power = 0.0;

    /**
     * Time/energy the pump actually stepped into the thermal package
     * (whole 1000-cycle sample quanta; the final partial quantum of a
     * run never fires the hook, so its heat stays out of the package
     * — the surrogate tier reproduces exactly that envelope).
     */
    Seconds sampled_time = 0.0;
    Joules sampled_energy = 0.0;

    TimeSeries junction_trace;     ///< sampled junction temperature
    TimeSeries power_trace;        ///< sampled die power
    TimeSeries melt_trace;         ///< sampled PCM melt fraction
    MachineStats machine;
};

/**
 * Build the machine for @p cfg (validated via machineConfig()). The
 * machine starts with cold L1/L2 state; a Scenario-engine caller may
 * warm-start it from a predecessor via Machine::warmStartFrom().
 */
std::unique_ptr<Machine> prepareMachine(const ParallelProgram &program,
                                        const SprintConfig &cfg);

/**
 * Per-sample scenario tap for preemptive timelines: invoked once per
 * energy sample, after the policy has consumed it, with the absolute
 * sample time and the pre-sample trace values the pump recorded.
 * Return true to suspend the machine at this sample boundary
 * (Machine::suspend); the task continues on a later pumpTaskSlice
 * call. A null observer is the classic uninterruptible run.
 */
using PumpObserver = std::function<bool(Seconds t, Celsius junction,
                                        Watts power, double melt)>;

/**
 * Accumulated pump state of one coupled task, possibly spanning
 * several suspend/resume slices. Everything here is value state; the
 * machine itself carries the architectural half of the checkpoint.
 * samplePump() is exactly one slice over a fresh state followed by
 * finalizePump(), so the sliced path and the classic path are the
 * same code — a run whose observer never suspends is bit-identical
 * to one with no observer at all.
 */
struct PumpState
{
    Seconds elapsed = 0.0;       ///< absolute trace clock (last sample)
    Seconds ramp_time = 0.0;     ///< activation ramps applied so far
    Seconds above_tdp_time = 0.0;
    Joules above_tdp_energy = 0.0;
    Seconds sampled_time = 0.0;  ///< sample time stepped into the package
    Joules sampled_energy = 0.0; ///< sample energy stepped into the package
    Celsius peak_junction = 0.0;
    bool sprint_exhausted = false;
    bool hardware_throttled = false;
    bool policy_throttled = false;
    TimeSeries junction_trace;
    TimeSeries power_trace;
    TimeSeries melt_trace;
};

/**
 * Drive @p machine until it completes or @p observe requests a
 * suspension, folding samples into @p st. The caller owns the package
 * lifecycle (activation ramp + policy.beginTask before the first
 * slice); slices share the armed policy, so back-to-back slices with
 * no intervening package/policy activity reproduce the uninterrupted
 * run bit-for-bit. Check machine.finished() afterwards.
 */
void pumpTaskSlice(Machine &machine, const SprintConfig &cfg,
                   MobilePackageModel &package, SprintPolicy &policy,
                   PumpState &st, const PumpObserver &observe = nullptr);

/**
 * Fold @p st and the finished machine into the classic RunResult
 * (task_time spans every ramp and run slice; suspended waiting time
 * is the timeline's business, not the task's).
 */
RunResult finalizePump(PumpState &&st, Machine &machine,
                       const SprintConfig &cfg,
                       MobilePackageModel &package);

/**
 * samplePump with a per-sample observer: drives the task to
 * completion, transparently resuming across any suspensions the
 * observer requests (the test/bench harness for forced
 * suspend/resume cadences — the Scenario engine runs its own slice
 * loop so it can reschedule between slices). Caller contract is
 * samplePump's; an observer that never suspends yields the classic
 * run bit-for-bit.
 */
RunResult samplePumpObserved(Machine &machine, const SprintConfig &cfg,
                             MobilePackageModel &package,
                             SprintPolicy &policy,
                             const PumpObserver &observe,
                             Seconds start_time = 0.0);

/**
 * Drive @p machine to completion against @p package under @p policy:
 * install the per-1000-cycle sample hook, record traces (sample times
 * offset by @p start_time for multi-task timelines), and apply policy
 * decisions to the machine (migration to core 0, boost drop, or the
 * hardware frequency throttle; a fault-injected config leaves
 * StopSprint unapplied so the throttle path is exercised).
 *
 * The caller owns the package lifecycle: apply the activation ramp
 * (package.step(cfg.activation_ramp)) and policy.beginTask() before
 * pumping. result.program_name is left empty for the caller.
 */
RunResult samplePump(Machine &machine, const SprintConfig &cfg,
                     MobilePackageModel &package, SprintPolicy &policy,
                     Seconds start_time = 0.0);

/**
 * Run @p program on the platform described by @p cfg.
 *
 * The machine starts with cold L1s and with cores enabled only after
 * the activation ramp (its duration is added to the task time, per
 * paper Section 5.3). The package starts cold; the policy is the
 * greedy activity-budget policy (or the thermometer ground truth when
 * cfg.governor.use_activity_estimate is false), reproducing the seed
 * behaviour: on exhaustion all threads migrate to core 0 (or, for a
 * DVFS sprint, the boost is dropped); if configured to model a hung
 * OS, the hardware throttle path is exercised instead.
 */
RunResult runSprint(const ParallelProgram &program,
                    const SprintConfig &cfg);

} // namespace csprint

#endif // CSPRINT_SPRINT_SIMULATION_HH
