/**
 * @file
 * The coupled sprint simulation (paper Section 8): the architectural
 * simulator's per-1000-cycle dynamic-energy samples drive the package
 * thermal model and the sprint governor; governor decisions feed back
 * into the machine (thread migration to a single core, or the
 * hardware frequency throttle).
 *
 * Sample boundaries are scheduler events of the machine's event-driven
 * loop (see PERF.md, "The machine hot path"): the machine stops at
 * every multiple of the sampling quantum with all energy tallies
 * priced, so the trace a hook observes is identical whichever
 * MachineLoop the SprintConfig's machine template selects.
 */

#ifndef CSPRINT_SPRINT_SIMULATION_HH
#define CSPRINT_SPRINT_SIMULATION_HH

#include <string>

#include "archsim/machine.hh"
#include "archsim/program.hh"
#include "common/timeseries.hh"
#include "common/units.hh"
#include "sprint/governor.hh"
#include "thermal/package.hh"

namespace csprint {

/** A complete sprint-platform configuration. */
struct SprintConfig
{
    int sprint_cores = 16;          ///< cores activated for the sprint
    int num_threads = 16;           ///< software threads
    double dvfs_boost = 1.0;        ///< >1: single-core DVFS sprint
    Seconds activation_ramp = 128e-6; ///< gradual activation (Section 5)
    MobilePackageParams package;    ///< thermal package (time-scaled)
    GovernorConfig governor;
    MachineConfig machine;          ///< cores/caches/memory template
    bool software_migration_fails = false; ///< fault injection: force
                                           ///< the hardware throttle
    /**
     * Scale all thermal capacitances by @p time_scale to match the
     * scaled-down workload inputs (see DESIGN.md, Substitutions; the
     * paper itself scales its PCM 100x for the same reason). Thermal
     * resistances are untouched, so TDP and steady state are
     * preserved while transients shrink by the same factor as the
     * simulated work.
     */
    static MobilePackageParams scaledPackage(Grams pcm_mass,
                                             double time_scale);

    /** Parallel sprint with @p cores cores (paper default 16). */
    static SprintConfig parallelSprint(int cores, Grams pcm_mass,
                                       double time_scale = 7e-4);

    /** Idealized single-core DVFS sprint with 16x power headroom. */
    static SprintConfig dvfsSprint(double power_headroom, Grams pcm_mass,
                                   double time_scale = 7e-4);

    /** Non-sprint single-core baseline (same TDP, LLC, memory). */
    static SprintConfig baseline();
};

/** Outcome of one coupled run. */
struct RunResult
{
    std::string program_name;
    int sprint_cores = 1;
    int num_threads = 1;
    double dvfs_boost = 1.0;

    Seconds task_time = 0.0;       ///< response time incl. activation
    Joules dynamic_energy = 0.0;   ///< total dynamic energy
    Celsius peak_junction = 0.0;   ///< max junction temperature
    double final_melt_fraction = 0.0;
    bool sprint_exhausted = false; ///< governor ended the sprint early
    bool hardware_throttled = false;
    Seconds sprint_duration = 0.0; ///< time spent above nominal TDP
    Seconds cooldown_estimate = 0.0; ///< Section 4.5 approximation
    Watts avg_power = 0.0;

    TimeSeries junction_trace;     ///< sampled junction temperature
    TimeSeries power_trace;        ///< sampled die power
    MachineStats machine;
};

/**
 * Run @p program on the platform described by @p cfg.
 *
 * The machine starts with cold L1s and with cores enabled only after
 * the activation ramp (its duration is added to the task time, per
 * paper Section 5.3). When the governor signals exhaustion, all
 * threads migrate to core 0 (or, for a DVFS sprint, the boost is
 * dropped); if configured to model a hung OS, the hardware throttle
 * path is exercised instead.
 */
RunResult runSprint(const ParallelProgram &program,
                    const SprintConfig &cfg);

} // namespace csprint

#endif // CSPRINT_SPRINT_SIMULATION_HH
